package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []time.Duration{30, 10, 20, 10, 0} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimestampIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal timestamps)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var fired Time = -1
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("nested After fired at %v, want 150", fired)
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		ev := e.After(-5, func() {})
		if ev.At() != 10 {
			t.Errorf("negative After scheduled at %v, want 10", ev.At())
		}
	})
	e.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.Cancel(ev)
	e.Cancel(nil)
	e.Run()
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	e.Run()
	e.Cancel(ev) // must not panic or corrupt the heap
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(Time(i), func() { got = append(got, i) }))
	}
	for i := 1; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.Run()
	if fired != 2 || e.Now() != 30 {
		t.Fatalf("after Run: fired=%d now=%v, want 2 and 30", fired, e.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(100)
	e.RunFor(50)
	if e.Now() != 150 {
		t.Fatalf("Now() = %v, want 150", e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestFiredCounts(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestDeterministicRandomStreams(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Int63() != fb.Int63() {
			t.Fatal("forked streams diverged")
		}
	}
}

// Property: events always execute in non-decreasing time order, whatever the
// scheduling pattern.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var last Time = -1
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountdownFires(t *testing.T) {
	fired := false
	c := NewCountdown(3, func() { fired = true })
	c.Done()
	c.Done()
	if fired {
		t.Fatal("fired early")
	}
	c.Done()
	if !fired {
		t.Fatal("did not fire after n Done calls")
	}
}

func TestCountdownZeroFiresImmediately(t *testing.T) {
	fired := false
	NewCountdown(0, func() { fired = true })
	if !fired {
		t.Fatal("zero countdown did not fire immediately")
	}
}

func TestCountdownOverDonePanics(t *testing.T) {
	c := NewCountdown(1, nil)
	c.Done()
	defer func() {
		if recover() == nil {
			t.Error("extra Done did not panic")
		}
	}()
	c.Done()
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 5*time.Millisecond, func() {
		ticks = append(ticks, e.Now())
	})
	e.RunUntil(22 * time.Millisecond)
	tk.Stop()
	e.Run()
	want := []Time{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond, 20 * time.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks %v, want %d", len(ticks), ticks, len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (ticker stopped from its own callback)", count)
	}
}

func TestTickerInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(NewEngine(1), 0, func() {})
}

func TestCountdownRemaining(t *testing.T) {
	fired := false
	c := NewCountdown(3, func() { fired = true })
	if c.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", c.Remaining())
	}
	c.Done()
	c.Done()
	if c.Remaining() != 1 || fired {
		t.Fatalf("Remaining = %d fired=%v, want 1,false", c.Remaining(), fired)
	}
	c.Done()
	if !fired || c.Remaining() != 0 {
		t.Fatalf("fired=%v remaining=%d after the last Done", fired, c.Remaining())
	}
}

func TestTickerStopIsIdempotent(t *testing.T) {
	eng := NewEngine(1)
	n := 0
	tk := NewTicker(eng, time.Millisecond, func() { n++ })
	eng.RunUntil(3500 * time.Microsecond)
	tk.Stop()
	tk.Stop() // second stop must be a no-op
	eng.RunUntil(10 * time.Millisecond)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

// TestRunUntilDeadlineBoundary pins the deadline semantics: the deadline is
// inclusive, same-timestamp events at the boundary drain in FIFO order —
// including events scheduled at the deadline BY an event at the deadline —
// and strictly-later events stay queued while the clock lands exactly on
// the deadline.
func TestRunUntilDeadlineBoundary(t *testing.T) {
	eng := NewEngine(1)
	deadline := 5 * time.Microsecond
	var order []string
	eng.At(deadline, func() {
		order = append(order, "a")
		// Scheduled mid-drain at exactly the deadline: must still fire,
		// after every event already queued at the deadline.
		eng.After(0, func() { order = append(order, "spawn") })
	})
	eng.At(deadline, func() { order = append(order, "b") })
	eng.At(deadline+time.Nanosecond, func() { order = append(order, "late") })

	eng.RunUntil(deadline)
	want := []string{"a", "b", "spawn"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if eng.Now() != deadline {
		t.Fatalf("clock at %v, want %v", eng.Now(), deadline)
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d, want the strictly-later event to remain", eng.Pending())
	}

	// A deadline in the past neither fires anything nor rewinds the clock.
	eng.RunUntil(deadline - time.Microsecond)
	if eng.Now() != deadline || len(order) != 3 {
		t.Fatalf("past deadline moved the clock to %v or fired events (%v)", eng.Now(), order)
	}

	eng.RunUntil(deadline + time.Nanosecond)
	if len(order) != 4 || order[3] != "late" {
		t.Fatalf("later deadline drained %v", order)
	}
}

// TestRunWindowLeavesClock pins RunWindow's contract: it drains the same
// inclusive window as RunUntil but leaves the clock at the last fired
// event instead of forcing it to the limit.
func TestRunWindowLeavesClock(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.At(2*time.Microsecond, func() { fired++ })
	eng.At(9*time.Microsecond, func() { fired++ })
	if n := eng.RunWindow(5 * time.Microsecond); n != 1 || fired != 1 {
		t.Fatalf("RunWindow fired %d events (callback saw %d), want 1", n, fired)
	}
	if eng.Now() != 2*time.Microsecond {
		t.Fatalf("clock at %v, want to stay at the last fired event", eng.Now())
	}
	if n := eng.RunWindow(time.Microsecond); n != 0 {
		t.Fatalf("empty window fired %d", n)
	}
	if eng.Now() != 2*time.Microsecond {
		t.Fatalf("empty window moved the clock to %v", eng.Now())
	}
}

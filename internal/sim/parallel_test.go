package sim

import (
	"testing"
	"time"
)

// mix64 is splitmix64's finalizer: the deterministic "genome" hash that
// drives every random-looking choice in the equivalence workload. Deriving
// all choices from event genomes (rather than an RNG consumed in firing
// order) makes the workload's behaviour independent of how same-timestamp
// events interleave, which is exactly the freedom the partitioned schedule
// has relative to a single global heap.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	eqLookahead = 20 * time.Microsecond
	eqMaxDepth  = 7
	eqRoots     = 4
)

// eqSched abstracts the two ways of running the workload: one global
// engine (the pre-refactor order) versus a partitioned Parallel.
type eqSched interface {
	now(d int) Time
	local(d int, delay time.Duration, fn func())
	cross(src, dst int, delay time.Duration, fn func())
}

type globalSched struct{ eng *Engine }

func (g globalSched) now(int) Time                                   { return g.eng.Now() }
func (g globalSched) local(_ int, delay time.Duration, fn func())    { g.eng.After(delay, fn) }
func (g globalSched) cross(_, _ int, delay time.Duration, fn func()) { g.eng.After(delay, fn) }

type partSched struct{ par *Parallel }

func (p partSched) now(d int) Time { return p.par.Domain(d).Now() }
func (p partSched) local(d int, delay time.Duration, fn func()) {
	p.par.Domain(d).After(delay, fn)
}
func (p partSched) cross(src, dst int, delay time.Duration, fn func()) {
	p.par.Post(src, dst, delay, fn)
}

// eqDomain accumulates a per-domain digest. Same-timestamp contributions
// are combined commutatively (wrapping add) and folded into a rolling hash
// whenever the domain's clock advances, so the digest pins the exact
// multiset of events per (domain, timestamp) and the exact time sequence,
// while staying indifferent to tie order — the one ordering freedom the
// deterministic merge rule (time, source domain, sequence) legitimately
// exercises relative to a global (time, sequence) heap.
type eqDomain struct {
	lastT  Time
	bucket uint64
	hash   uint64
}

func (d *eqDomain) record(t Time, term uint64) {
	if t != d.lastT {
		d.fold()
		d.lastT = t
	}
	d.bucket += term
}

func (d *eqDomain) fold() {
	d.hash = mix64(d.hash ^ d.bucket ^ uint64(d.lastT))
	d.bucket = 0
}

type eqWorld struct {
	s    eqSched
	doms []*eqDomain
}

// fire is one workload event: it records a genome-derived term and spawns
// 0–2 children, each locally or across a domain boundary, with delays
// derived from the child's genome.
func (w *eqWorld) fire(d, depth int, genome uint64) {
	t := w.s.now(d)
	w.doms[d].record(t, mix64(genome^uint64(t)))
	if depth >= eqMaxDepth {
		return
	}
	n := len(w.doms)
	for k := uint64(0); k < mix64(genome)%3; k++ {
		cg := mix64(genome + 2*k + 1)
		delay := time.Duration(cg % uint64(50*time.Microsecond))
		if cg&(1<<63) != 0 && n > 1 {
			dst := int((cg >> 32) % uint64(n))
			if dst == d {
				dst = (dst + 1) % n
			}
			cg := cg // pin for the closure
			w.s.cross(d, dst, eqLookahead+delay, func() { w.fire(dst, depth+1, cg) })
		} else {
			cg := cg
			w.s.local(d, delay, func() { w.fire(d, depth+1, cg) })
		}
	}
}

type eqResult struct {
	fired  uint64
	now    Time
	digest []uint64
}

func (w *eqWorld) result(fired uint64, now Time) eqResult {
	digest := make([]uint64, len(w.doms))
	for i, d := range w.doms {
		d.fold()
		digest[i] = d.hash
	}
	return eqResult{fired: fired, now: now, digest: digest}
}

func newEqWorld(s eqSched, n int) *eqWorld {
	w := &eqWorld{s: s, doms: make([]*eqDomain, n)}
	for i := range w.doms {
		w.doms[i] = &eqDomain{}
	}
	return w
}

func runGlobal(seed int64, n int) eqResult {
	eng := NewEngine(seed)
	w := newEqWorld(globalSched{eng}, n)
	forEachRoot(seed, n, func(d int, t Time, g uint64) {
		eng.At(t, func() { w.fire(d, 0, g) })
	})
	eng.Run()
	return w.result(eng.Fired(), eng.Now())
}

func runPartitioned(seed int64, n, workers int) eqResult {
	par := NewParallel(eqLookahead)
	for d := 0; d < n; d++ {
		par.NewDomain("", seed+int64(d))
	}
	w := newEqWorld(partSched{par}, n)
	forEachRoot(seed, n, func(d int, t Time, g uint64) {
		par.Domain(d).At(t, func() { w.fire(d, 0, g) })
	})
	par.Run(workers)
	return w.result(par.Fired(), par.Now())
}

func forEachRoot(seed int64, n int, at func(d int, t Time, g uint64)) {
	for d := 0; d < n; d++ {
		for r := 0; r < eqRoots; r++ {
			g := mix64(uint64(seed)*1000003 + uint64(d)*131 + uint64(r))
			at(d, Time(g%uint64(30*time.Microsecond)), g)
		}
	}
}

func assertEqResult(t *testing.T, label string, a, b eqResult) {
	t.Helper()
	if a.fired != b.fired {
		t.Errorf("%s: fired %d != %d", label, a.fired, b.fired)
	}
	if a.now != b.now {
		t.Errorf("%s: now %v != %v", label, a.now, b.now)
	}
	for i := range a.digest {
		if a.digest[i] != b.digest[i] {
			t.Errorf("%s: domain %d digest %#x != %#x", label, i, a.digest[i], b.digest[i])
		}
	}
}

// TestParallelEquivalence is the acceptance property of the partitioned
// engine: across >= 8 seeds, the same workload produces identical
// (Fired, Now, result bytes) whether it runs on one global event heap
// (pre-refactor order), on the partitioned engine with a single worker, or
// on the partitioned engine with several workers.
func TestParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 2 + int(seed%4)
		global := runGlobal(seed, n)
		if global.fired == 0 {
			t.Fatalf("seed %d: degenerate workload fired no events", seed)
		}
		p1 := runPartitioned(seed, n, 1)
		assertEqResult(t, "global vs 1-worker", global, p1)
		p4 := runPartitioned(seed, n, 4)
		assertEqResult(t, "1-worker vs 4-worker", p1, p4)
	}
}

// TestParallelSingleDomainIdentical pins the degenerate partition: one
// domain under the coordinator fires the exact event sequence, clock and
// count of a bare Engine — the bit-identical sequential mode the existing
// golden and soak tests rely on.
func TestParallelSingleDomainIdentical(t *testing.T) {
	schedule := func(eng *Engine, log *[]Time) {
		for i := 0; i < 5; i++ {
			i := i
			eng.At(Time(i)*time.Microsecond, func() {
				*log = append(*log, eng.Now())
				if i == 2 {
					eng.After(500*time.Nanosecond, func() { *log = append(*log, eng.Now()) })
				}
			})
		}
	}
	var plainLog, parLog []Time
	plain := NewEngine(7)
	schedule(plain, &plainLog)
	plain.Run()

	par := NewParallel(0)
	_, dom := par.NewDomain("solo", 7)
	schedule(dom, &parLog)
	par.Run(1)

	if plain.Fired() != par.Fired() || plain.Now() != par.Now() {
		t.Fatalf("single-domain mismatch: fired %d/%d now %v/%v",
			plain.Fired(), par.Fired(), plain.Now(), par.Now())
	}
	if len(plainLog) != len(parLog) {
		t.Fatalf("log length %d != %d", len(plainLog), len(parLog))
	}
	for i := range plainLog {
		if plainLog[i] != parLog[i] {
			t.Fatalf("event %d fired at %v vs %v", i, plainLog[i], parLog[i])
		}
	}
}

// TestPostBelowLookaheadPanics pins the conservative contract: a
// cross-domain post closer than the lookahead would violate the window
// causality argument and must be rejected loudly.
func TestPostBelowLookaheadPanics(t *testing.T) {
	par := NewParallel(10 * time.Microsecond)
	a, engA := par.NewDomain("a", 1)
	b, _ := par.NewDomain("b", 2)
	engA.At(0, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for post below lookahead")
		}
	}()
	par.Post(a, b, 5*time.Microsecond, func() {})
}

// TestParallelStats sanity-checks the per-domain accounting: fired counts
// sum to the engine totals and a domain that idles through windows records
// lookahead stalls.
func TestParallelStats(t *testing.T) {
	par := NewParallel(10 * time.Microsecond)
	busyID, busy := par.NewDomain("busy", 1)
	_, idle := par.NewDomain("idle", 2)
	for i := 0; i < 100; i++ {
		busy.At(Time(i)*time.Microsecond, func() {})
	}
	idle.At(0, func() {})
	_ = busyID
	par.Run(2)
	stats := par.Stats()
	var fired uint64
	for _, s := range stats {
		fired += s.Fired
	}
	if fired != par.Fired() || fired != 101 {
		t.Fatalf("stats fired %d, engine fired %d, want 101", fired, par.Fired())
	}
	if stats[1].Stalls == 0 {
		t.Errorf("idle domain recorded no lookahead stalls over %d windows", par.Windows())
	}
	if stats[0].MaxQueueDepth == 0 {
		t.Errorf("busy domain recorded zero max queue depth")
	}
}

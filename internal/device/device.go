// Package device simulates GPUs: memory buffers, CUDA-like streams whose
// kernels serialise per stream but run concurrently across streams, and
// aggregation ("reduce") kernels that operate on payload.Payload tensors.
//
// This is the substitute for the CUDA runtime: in dense mode collectives
// move actual numbers through these buffers, so tests can assert that every
// rank ends with the true aggregate; in phantom mode only provenance
// metadata moves. Either way kernel-launch latency and reduce throughput
// are charged on the simulation clock from byte counts alone, exactly where
// a real GPU would spend them (paper Sec. V-B: pipelining hides kernel
// launch under NVLink time), so both modes produce identical timelines.
package device

import (
	"fmt"
	"strconv"
	"time"

	"adapcc/internal/metrics"
	"adapcc/internal/payload"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// KernelLaunchLatency is the fixed host-side cost of launching one kernel.
const KernelLaunchLatency = 4 * time.Microsecond

// reduceThroughputBps returns the bytes/second an aggregation kernel
// processes on the given model.
func reduceThroughputBps(m topology.GPUModel) float64 {
	switch m {
	case topology.GPUH100:
		return 1200e9
	case topology.GPUA100:
		return 600e9
	case topology.GPUV100:
		return 300e9
	default:
		return 150e9
	}
}

// GPU is one simulated device, owned by one worker rank.
type GPU struct {
	eng   *sim.Engine
	model topology.GPUModel
	rank  int

	allocBytes int64
	kernels    int64
	// stall, when installed, returns extra latency added to every kernel
	// launched from this instant on (straggler/hang injection). Nil — the
	// default — costs one pointer comparison per launch.
	stall func(now sim.Time) time.Duration
	gm    *gpuMetrics // nil when metrics are disabled
}

// gpuMetrics is a GPU's pre-resolved instrument bundle (see SetMetrics).
type gpuMetrics struct {
	kernels    *metrics.Counter   // kernels launched
	busy       *metrics.Counter   // virtual seconds of kernel execution
	kernelTime *metrics.Histogram // per-kernel duration
	backlog    *metrics.Histogram // stream occupancy: queue delay at launch
}

// SetMetrics installs (or, with nil, removes) the metrics registry. The GPU
// records kernel launches, per-kernel duration, cumulative busy time and
// stream occupancy (how long each launch waits behind kernels already
// queued on its stream), labelled by rank.
func (g *GPU) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		g.gm = nil
		return
	}
	rank := strconv.Itoa(g.rank)
	g.gm = &gpuMetrics{
		kernels: reg.Counter("adapcc_gpu_kernels_total",
			"kernels launched per GPU", "rank", rank),
		busy: reg.Counter("adapcc_gpu_busy_seconds_total",
			"virtual seconds of kernel execution per GPU", "rank", rank),
		kernelTime: reg.Histogram("adapcc_gpu_kernel_seconds",
			"per-kernel virtual duration (launch latency + throughput time)",
			metrics.DurationBuckets, "rank", rank),
		backlog: reg.Histogram("adapcc_gpu_stream_backlog_seconds",
			"queue delay behind earlier kernels on the same stream at launch",
			metrics.DurationBuckets, "rank", rank),
	}
}

// SetKernelStall installs (or, with nil, removes) a per-kernel stall hook:
// each launch asks it for extra duration charged on top of the modelled
// kernel time. The chaos engine uses it for straggler kernels (small
// delays) and hung workers (delays beyond the executor's stall timeout).
func (g *GPU) SetKernelStall(fn func(now sim.Time) time.Duration) { g.stall = fn }

// New returns a GPU of the given model for the given global rank.
func New(eng *sim.Engine, model topology.GPUModel, rank int) *GPU {
	return &GPU{eng: eng, model: model, rank: rank}
}

// Rank returns the owning worker's global rank.
func (g *GPU) Rank() int { return g.rank }

// Model returns the GPU model.
func (g *GPU) Model() topology.GPUModel { return g.model }

// Alloc allocates a float32 buffer of n elements on the device, tracking
// memory footprint (the set-up phase of Sec. V-A registers these once and
// reuses them across iterations).
func (g *GPU) Alloc(n int) []float32 {
	g.allocBytes += int64(n) * 4
	return make([]float32, n)
}

// AllocPayload allocates an n-element device tensor in the given payload
// mode. Memory accounting is identical in both modes — a phantom tensor
// stands in for the same registered device buffer — so footprint reports
// do not depend on the data-plane fidelity.
func (g *GPU) AllocPayload(n int, mode payload.Mode) payload.Payload {
	if mode == payload.Phantom {
		g.allocBytes += int64(n) * 4
		return payload.NewPhantom(n)
	}
	return payload.WrapDense(g.Alloc(n))
}

// AllocatedBytes reports the cumulative device memory registered.
func (g *GPU) AllocatedBytes() int64 { return g.allocBytes }

// KernelsLaunched reports how many kernels have been launched.
func (g *GPU) KernelsLaunched() int64 { return g.kernels }

// NewStream creates an independent execution stream. Kernels within one
// stream serialise; kernels on different streams overlap (the multi-stream
// parallelism of Sec. V-A, unlike NCCL's single stream).
func (g *GPU) NewStream() *Stream {
	return &Stream{gpu: g}
}

// Stream is a CUDA-stream analogue: an in-order kernel queue.
type Stream struct {
	gpu       *GPU
	busyUntil sim.Time
}

// LaunchReduceInto enqueues a kernel that accumulates every source payload
// into dst in one launch (dst += Σ srcs) and calls onDone when the kernel
// retires. All payloads must have dst's length and mode. Time is charged
// from the source byte counts, so dense and phantom kernels retire at the
// same virtual instant.
func (s *Stream) LaunchReduceInto(dst payload.Payload, srcs []payload.Payload, onDone func()) {
	var bytes int64
	for _, src := range srcs {
		if src.Len() != dst.Len() {
			panic(fmt.Sprintf("device: reduce length mismatch %d vs %d", dst.Len(), src.Len()))
		}
		bytes += src.SizeBytes()
	}
	s.launch(bytes, func() {
		dst.AddFrom(srcs...)
		if onDone != nil {
			onDone()
		}
	})
}

// LaunchCopyInto enqueues a kernel that copies src into dst (intra-device
// movement, e.g. staging a result buffer).
func (s *Stream) LaunchCopyInto(dst, src payload.Payload, onDone func()) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("device: copy length mismatch %d vs %d", dst.Len(), src.Len()))
	}
	s.launch(src.SizeBytes(), func() {
		dst.CopyFrom(src)
		if onDone != nil {
			onDone()
		}
	})
}

// LaunchReduce enqueues a kernel that accumulates src element-wise into dst
// (dst[i] += src[i]). Dense-mode convenience over LaunchReduceInto.
func (s *Stream) LaunchReduce(dst, src []float32, onDone func()) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("device: reduce length mismatch %d vs %d", len(dst), len(src)))
	}
	s.LaunchReduceInto(payload.WrapDense(dst), []payload.Payload{payload.WrapDense(src)}, onDone)
}

// LaunchReduceMulti enqueues a kernel that accumulates every source into dst
// in one launch (used when several predecessors' chunks are ready together).
// Dense-mode convenience over LaunchReduceInto.
func (s *Stream) LaunchReduceMulti(dst []float32, srcs [][]float32, onDone func()) {
	ps := make([]payload.Payload, len(srcs))
	for i, src := range srcs {
		if len(src) != len(dst) {
			panic(fmt.Sprintf("device: reduce length mismatch %d vs %d", len(dst), len(src)))
		}
		ps[i] = payload.WrapDense(src)
	}
	s.LaunchReduceInto(payload.WrapDense(dst), ps, onDone)
}

// LaunchCopy enqueues a kernel that copies src into dst. Dense-mode
// convenience over LaunchCopyInto.
func (s *Stream) LaunchCopy(dst, src []float32, onDone func()) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("device: copy length mismatch %d vs %d", len(dst), len(src)))
	}
	s.LaunchCopyInto(payload.WrapDense(dst), payload.WrapDense(src), onDone)
}

// launch charges launch latency plus throughput time, serialised after any
// kernel already queued on this stream, then runs body.
func (s *Stream) launch(bytes int64, body func()) {
	g := s.gpu
	g.kernels++
	start := g.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	dur := KernelLaunchLatency + sim.Time(float64(bytes)/reduceThroughputBps(g.model)*1e9)
	if g.stall != nil {
		dur += g.stall(start)
	}
	finish := start + dur
	s.busyUntil = finish
	if g.gm != nil {
		now := g.eng.Now()
		g.gm.kernels.Inc(now)
		g.gm.busy.Add(now, time.Duration(dur).Seconds())
		g.gm.kernelTime.ObserveDuration(now, time.Duration(dur))
		g.gm.backlog.ObserveDuration(now, time.Duration(start-now))
	}
	g.eng.Do(finish, body)
}

package device

import (
	"testing"
	"time"

	"adapcc/internal/payload"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func TestReduceAccumulates(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	dst := []float32{1, 2, 3}
	src := []float32{10, 20, 30}
	done := false
	g.NewStream().LaunchReduce(dst, src, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("kernel never retired")
	}
	want := []float32{11, 22, 33}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestReduceMulti(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	dst := []float32{1, 1}
	g.NewStream().LaunchReduceMulti(dst, [][]float32{{2, 2}, {3, 3}}, nil)
	eng.Run()
	if dst[0] != 6 || dst[1] != 6 {
		t.Fatalf("dst = %v, want [6 6]", dst)
	}
}

func TestCopy(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUV100, 0)
	dst := make([]float32, 3)
	g.NewStream().LaunchCopy(dst, []float32{7, 8, 9}, nil)
	eng.Run()
	if dst[0] != 7 || dst[2] != 9 {
		t.Fatalf("dst = %v, want [7 8 9]", dst)
	}
}

func TestKernelTimingChargesLaunchAndThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	// 600e9 B/s → 6 MB takes 10 µs, plus 4 µs launch.
	dst := make([]float32, 1_500_000)
	src := make([]float32, 1_500_000)
	var at sim.Time = -1
	g.NewStream().LaunchReduce(dst, src, func() { at = eng.Now() })
	eng.Run()
	want := KernelLaunchLatency + 10*time.Microsecond
	if diff := at - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("kernel retired at %v, want ≈%v", at, want)
	}
}

func TestSameStreamSerialises(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	s := g.NewStream()
	buf := make([]float32, 1_500_000) // 10 µs of reduce work each
	var first, second sim.Time
	s.LaunchReduce(buf, buf, func() { first = eng.Now() })
	s.LaunchReduce(buf, buf, func() { second = eng.Now() })
	eng.Run()
	if second-first < 10*time.Microsecond {
		t.Fatalf("second kernel at %v did not wait for first at %v", second, first)
	}
}

func TestDifferentStreamsOverlap(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	buf := make([]float32, 1_500_000)
	var first, second sim.Time
	g.NewStream().LaunchReduce(buf, buf, func() { first = eng.Now() })
	g.NewStream().LaunchCopy(buf, buf, func() { second = eng.Now() })
	eng.Run()
	if first != second {
		t.Fatalf("independent streams should finish together: %v vs %v", first, second)
	}
}

func TestV100SlowerThanA100(t *testing.T) {
	timeOn := func(m topology.GPUModel) sim.Time {
		eng := sim.NewEngine(1)
		g := New(eng, m, 0)
		buf := make([]float32, 10_000_000)
		var at sim.Time
		g.NewStream().LaunchReduce(buf, buf, func() { at = eng.Now() })
		eng.Run()
		return at
	}
	if timeOn(topology.GPUV100) <= timeOn(topology.GPUA100) {
		t.Fatal("V100 reduce kernel should be slower than A100")
	}
}

func TestAllocTracksBytes(t *testing.T) {
	g := New(sim.NewEngine(1), topology.GPUA100, 3)
	g.Alloc(1000)
	g.Alloc(500)
	if got := g.AllocatedBytes(); got != 6000 {
		t.Fatalf("AllocatedBytes = %d, want 6000", got)
	}
	if g.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", g.Rank())
	}
}

func TestKernelsCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	s := g.NewStream()
	buf := []float32{0}
	s.LaunchReduce(buf, buf, nil)
	s.LaunchCopy(buf, buf, nil)
	eng.Run()
	if got := g.KernelsLaunched(); got != 2 {
		t.Fatalf("KernelsLaunched = %d, want 2", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	s := g.NewStream()
	for name, fn := range map[string]func(){
		"reduce": func() { s.LaunchReduce(make([]float32, 2), make([]float32, 3), nil) },
		"copy":   func() { s.LaunchCopy(make([]float32, 2), make([]float32, 3), nil) },
		"multi":  func() { s.LaunchReduceMulti(make([]float32, 2), [][]float32{make([]float32, 3)}, nil) },
	} {
		fn := fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("mismatched lengths did not panic")
				}
			}()
			fn()
		})
	}
}

// TestKernelTimingModeIndependent drives one reduce kernel with dense and
// phantom payloads of the same length: the virtual retire time must be
// bit-identical (the data plane never feeds the timing plane).
func TestKernelTimingModeIndependent(t *testing.T) {
	timeOf := func(mode payload.Mode) sim.Time {
		eng := sim.NewEngine(1)
		g := New(eng, topology.GPUA100, 0)
		dst := g.AllocPayload(1_500_000, mode)
		src := g.AllocPayload(1_500_000, mode)
		var at sim.Time = -1
		g.NewStream().LaunchReduceInto(dst, []payload.Payload{src}, func() { at = eng.Now() })
		eng.Run()
		return at
	}
	d, p := timeOf(payload.Dense), timeOf(payload.Phantom)
	if d != p || d < 0 {
		t.Fatalf("dense retired at %v, phantom at %v", d, p)
	}
}

func TestPhantomReduceTracksProvenance(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUA100, 0)
	dst := payload.NewPhantom(8)
	dst.CopyFrom(payload.PhantomInput(0, 8))
	g.NewStream().LaunchReduceInto(dst, []payload.Payload{payload.PhantomInput(1, 8), payload.PhantomInput(2, 8)}, nil)
	eng.Run()
	prov := dst.Provenance()
	if len(prov) != 3 || prov[0] != 0 || prov[1] != 1 || prov[2] != 2 {
		t.Fatalf("Provenance = %v, want [0 1 2]", prov)
	}
	if got, want := dst.Checksum(), payload.PhantomChecksum([]int{0, 1, 2}, 0, 8); got != want {
		t.Fatalf("Checksum = %#x, want %#x", got, want)
	}
}

func TestAllocPayloadTracksBytesBothModes(t *testing.T) {
	for _, mode := range []payload.Mode{payload.Dense, payload.Phantom} {
		g := New(sim.NewEngine(1), topology.GPUA100, 0)
		p := g.AllocPayload(1000, mode)
		if p.Len() != 1000 || p.Mode() != mode {
			t.Fatalf("%v: AllocPayload shape wrong", mode)
		}
		if got := g.AllocatedBytes(); got != 4000 {
			t.Fatalf("%v: AllocatedBytes = %d, want 4000", mode, got)
		}
	}
}

func TestModelAccessorAndThroughputCatalog(t *testing.T) {
	eng := sim.NewEngine(1)
	g := New(eng, topology.GPUV100, 7)
	if g.Rank() != 7 {
		t.Errorf("Rank() = %d", g.Rank())
	}
	if g.Model() != topology.GPUV100 {
		t.Errorf("Model() = %v", g.Model())
	}
	// Catalog ordering: H100 > A100 > V100 reduce throughput.
	h := reduceThroughputBps(topology.GPUH100)
	a := reduceThroughputBps(topology.GPUA100)
	v := reduceThroughputBps(topology.GPUV100)
	if !(h > a && a > v && v > 0) {
		t.Errorf("throughput ordering broken: h=%v a=%v v=%v", h, a, v)
	}
	// Unknown models still aggregate at some positive rate.
	if reduceThroughputBps(topology.GPUModel(99)) <= 0 {
		t.Error("unknown model has no reduce throughput")
	}
}

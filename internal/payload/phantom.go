package payload

import "fmt"

// phantom is the metadata-only implementation: a view over a segment
// tensor that tracks, per element range, which ranks' contributions have
// been folded in. No element data exists; the checksum is derived from
// provenance and absolute element positions, so it is O(segments) to
// compute, splits exactly under views, and is additive under reduction.
type phantom struct {
	t          *ptensor
	start, end int // view window, absolute tensor coordinates
}

// ptensor is the shared backing state of one phantom tensor: sorted,
// non-overlapping segments covering [0, n). spare is the previous
// generation's segment array, recycled by write so steady-state rewriting
// (one write per delivered chunk) allocates nothing.
type ptensor struct {
	n     int
	segs  []pseg
	spare []pseg
}

// pseg annotates [start, end) with the set of contributing ranks. An
// empty set means "zeros": no contribution yet.
type pseg struct {
	start, end int
	prov       rankSet
}

// NewPhantom returns a blank (zero-contribution) phantom tensor of n
// elements.
func NewPhantom(n int) Payload {
	return newPhantomProv(n, nil)
}

// PhantomInput returns a phantom tensor of n elements representing the
// given rank's local input: every element carries that rank's
// contribution and nothing else.
func PhantomInput(rank, n int) Payload {
	return newPhantomProv(n, rankSet{rank})
}

func newPhantomProv(n int, prov rankSet) Payload {
	t := &ptensor{n: n}
	if n > 0 {
		t.segs = []pseg{{start: 0, end: n, prov: prov}}
	}
	return phantom{t: t, start: 0, end: n}
}

func (p phantom) Mode() Mode         { return Phantom }
func (p phantom) Len() int           { return p.end - p.start }
func (p phantom) SizeBytes() int64   { return int64(p.end-p.start) * 4 }
func (p phantom) Float32() []float32 { return nil }

func (p phantom) View(start, end int) Payload {
	if start < 0 || end < start || p.start+end > p.end {
		panic(fmt.Sprintf("payload: phantom view [%d,%d) out of range (len %d)", start, end, p.Len()))
	}
	return phantom{t: p.t, start: p.start + start, end: p.start + end}
}

func (p phantom) CopyFrom(src Payload) {
	s := mustPhantom("CopyFrom", src, p.Len())
	if s.t != p.t {
		// Distinct tensors: iterate the source's live segments directly —
		// writes only touch p.t, so no snapshot is needed.
		for _, seg := range s.t.segs {
			if seg.end <= s.start || seg.start >= s.end {
				continue
			}
			a, b := max(seg.start, s.start), min(seg.end, s.end)
			p.t.write(p.start+(a-s.start), p.start+(b-s.start), seg.prov)
		}
		return
	}
	// Aliasing windows of one tensor: snapshot first.
	for _, pc := range s.pieces() {
		p.t.write(p.start+pc.start, p.start+pc.end, pc.prov)
	}
}

func (p phantom) AddFrom(srcs ...Payload) {
	lists := make([][]pseg, 0, len(srcs)+1)
	lists = append(lists, p.pieces())
	for _, src := range srcs {
		s := mustPhantom("AddFrom", src, p.Len())
		lists = append(lists, s.pieces())
	}
	// Sweep the elementary intervals induced by every list's boundaries
	// and union the covering provenance sets.
	bounds := boundarySet(lists, p.Len())
	idx := make([]int, len(lists))
	for i := 1; i < len(bounds); i++ {
		a, b := bounds[i-1], bounds[i]
		var prov rankSet
		for li, list := range lists {
			for idx[li] < len(list) && list[idx[li]].end <= a {
				idx[li]++
			}
			if idx[li] < len(list) && list[idx[li]].start <= a {
				prov = unionSet(prov, list[idx[li]].prov)
			}
		}
		p.t.write(p.start+a, p.start+b, prov)
	}
}

// Checksum derives the positional checksum of the window: each rank r
// contributes mixRank(r) * Σ_{i in range} (i+1), summed mod 2^64. The
// per-element weight makes the checksum sensitive to WHERE a
// contribution landed, and range sums telescope (triangular numbers), so
// evaluation is O(segments), not O(elements).
func (p phantom) Checksum() uint64 {
	var sum uint64
	for _, s := range p.t.segs {
		if s.end <= p.start || s.start >= p.end {
			continue
		}
		w := triWeight(max(s.start, p.start), min(s.end, p.end))
		for _, r := range s.prov {
			sum += mixRank(r) * w
		}
	}
	return sum
}

// Provenance returns the ranks whose contributions reached EVERY element
// of the window (set intersection across segments), sorted.
func (p phantom) Provenance() []int {
	var acc rankSet
	found := false
	for _, s := range p.t.segs {
		if s.end <= p.start || s.start >= p.end {
			continue
		}
		if !found {
			acc, found = s.prov, true
		} else {
			acc = intersectSet(acc, s.prov)
		}
	}
	if !found {
		return []int{}
	}
	return append([]int{}, acc...)
}

// pieces snapshots the window's segments in window-relative coordinates.
// A snapshot (not an iterator) so CopyFrom/AddFrom tolerate src and dst
// aliasing the same tensor.
func (p phantom) pieces() []pseg {
	var out []pseg
	for _, s := range p.t.segs {
		if s.end <= p.start || s.start >= p.end {
			continue
		}
		a, b := s.start, s.end
		if a < p.start {
			a = p.start
		}
		if b > p.end {
			b = p.end
		}
		out = append(out, pseg{start: a - p.start, end: b - p.start, prov: s.prov})
	}
	return out
}

// write replaces [start, end) of the tensor with the given provenance,
// splitting boundary segments and coalescing equal neighbours.
func (t *ptensor) write(start, end int, prov rankSet) {
	if start >= end {
		return
	}
	out := t.spare[:0]
	inserted := false
	for _, s := range t.segs {
		if s.end <= start || s.start >= end {
			if !inserted && s.start >= end {
				out = appendSeg(out, pseg{start: start, end: end, prov: prov})
				inserted = true
			}
			out = appendSeg(out, s)
			continue
		}
		if s.start < start {
			out = appendSeg(out, pseg{start: s.start, end: start, prov: s.prov})
		}
		if !inserted {
			out = appendSeg(out, pseg{start: start, end: end, prov: prov})
			inserted = true
		}
		if s.end > end {
			out = appendSeg(out, pseg{start: end, end: s.end, prov: s.prov})
		}
	}
	if !inserted {
		out = appendSeg(out, pseg{start: start, end: end, prov: prov})
	}
	t.spare = t.segs
	t.segs = out
}

func appendSeg(segs []pseg, s pseg) []pseg {
	if s.start >= s.end {
		return segs
	}
	if n := len(segs); n > 0 && segs[n-1].end == s.start && equalSet(segs[n-1].prov, s.prov) {
		segs[n-1].end = s.end
		return segs
	}
	return append(segs, s)
}

func mustPhantom(op string, p Payload, wantLen int) phantom {
	s, ok := p.(phantom)
	if !ok {
		panic(fmt.Sprintf("payload: %s mode mismatch (phantom vs %v)", op, p.Mode()))
	}
	if s.Len() != wantLen {
		panic(fmt.Sprintf("payload: %s length mismatch %d vs %d", op, wantLen, s.Len()))
	}
	return s
}

// boundarySet returns the sorted, deduplicated boundaries of every list
// plus 0 and length.
func boundarySet(lists [][]pseg, length int) []int {
	seen := map[int]bool{0: true, length: true}
	out := []int{0, length}
	for _, list := range lists {
		for _, s := range list {
			for _, b := range [2]int{s.start, s.end} {
				if !seen[b] {
					seen[b] = true
					out = append(out, b)
				}
			}
		}
	}
	sortInts(out)
	return out
}

// PhantomChecksum computes the checksum a phantom range [start, end) (in
// absolute tensor coordinates) carries after the contributions of exactly
// the given ranks reached every element — the reference value tests
// compare collective outputs against.
func PhantomChecksum(ranks []int, start, end int) uint64 {
	w := triWeight(start, end)
	var sum uint64
	for _, r := range ranks {
		sum += mixRank(r) * w
	}
	return sum
}

// triWeight is Σ_{i=start}^{end-1} (i+1) = T(end) - T(start) with
// T(n) = n(n+1)/2, computed in uint64 (wraparound is fine: all checksum
// arithmetic is mod 2^64).
func triWeight(start, end int) uint64 {
	tri := func(n int) uint64 {
		u := uint64(n)
		return u * (u + 1) / 2
	}
	return tri(end) - tri(start)
}

// mixRank maps a rank to a well-spread 64-bit multiplier (splitmix64
// finaliser) so distinct rank sets virtually never collide.
func mixRank(r int) uint64 {
	z := uint64(r+1) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

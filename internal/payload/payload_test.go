package payload

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	p := WrapDense(data)
	if p.Mode() != Dense || p.Len() != 4 || p.SizeBytes() != 16 {
		t.Fatalf("dense shape wrong: %v %d %d", p.Mode(), p.Len(), p.SizeBytes())
	}
	if p.Provenance() != nil {
		t.Error("dense provenance should be nil")
	}
	v := p.View(1, 3)
	v.AddFrom(WrapDense([]float32{10, 10}))
	if data[1] != 12 || data[2] != 13 {
		t.Fatalf("view write not visible: %v", data)
	}
	v.CopyFrom(WrapDense([]float32{7, 8}))
	if data[1] != 7 || data[2] != 8 {
		t.Fatalf("copy through view failed: %v", data)
	}
	if p.Float32()[0] != 1 {
		t.Error("Float32 should alias backing data")
	}
}

func TestDenseChecksumSensitive(t *testing.T) {
	a := WrapDense([]float32{1, 2, 3})
	b := WrapDense([]float32{1, 2, 4})
	if a.Checksum() == b.Checksum() {
		t.Error("different data, same checksum")
	}
	if a.Checksum() != WrapDense([]float32{1, 2, 3}).Checksum() {
		t.Error("checksum not deterministic")
	}
}

func TestDenseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	WrapDense(make([]float32, 2)).CopyFrom(WrapDense(make([]float32, 3)))
}

func TestModeMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mode mismatch did not panic")
		}
	}()
	NewPhantom(2).CopyFrom(WrapDense(make([]float32, 2)))
}

func TestPhantomInputProvenance(t *testing.T) {
	p := PhantomInput(3, 10)
	if got := p.Provenance(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Provenance = %v, want [3]", got)
	}
	if got := p.View(2, 5).Provenance(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("view Provenance = %v, want [3]", got)
	}
	if NewPhantom(4).Checksum() != 0 {
		t.Error("blank phantom should have zero checksum")
	}
}

func TestPhantomReduceMatchesReference(t *testing.T) {
	// Simulate a 3-rank reduce into rank 0's scratch over [0, 100).
	dst := NewPhantom(100)
	dst.CopyFrom(PhantomInput(0, 100))
	dst.AddFrom(PhantomInput(1, 100), PhantomInput(2, 100))
	want := PhantomChecksum([]int{0, 1, 2}, 0, 100)
	if got := dst.Checksum(); got != want {
		t.Fatalf("Checksum = %#x, want %#x", got, want)
	}
	if got := dst.Provenance(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Provenance = %v", got)
	}
}

func TestPhantomChecksumSplitsUnderViews(t *testing.T) {
	p := NewPhantom(64)
	p.CopyFrom(PhantomInput(1, 64))
	p.View(16, 48).AddFrom(PhantomInput(2, 64).View(16, 48))
	// Checksum of the whole = sum of any partition of it.
	whole := p.Checksum()
	parts := p.View(0, 10).Checksum() + p.View(10, 48).Checksum() + p.View(48, 64).Checksum()
	if whole != parts {
		t.Fatalf("checksum not additive under views: %#x vs %#x", whole, parts)
	}
	// Position sensitivity: same provenance in a different place differs.
	q := NewPhantom(64)
	q.CopyFrom(PhantomInput(1, 64))
	q.View(0, 32).AddFrom(PhantomInput(2, 64).View(0, 32))
	if p.Checksum() == q.Checksum() {
		t.Error("checksum ignores where a contribution landed")
	}
}

func TestPhantomCopyRebasesPositions(t *testing.T) {
	// AlltoAll-style move: sender's block [20,30) lands at receiver's
	// [50,60); the receiver's checksum must use destination positions.
	src := PhantomInput(7, 100)
	dst := NewPhantom(100)
	dst.View(50, 60).CopyFrom(src.View(20, 30))
	if got, want := dst.View(50, 60).Checksum(), PhantomChecksum([]int{7}, 50, 60); got != want {
		t.Fatalf("rebased checksum = %#x, want %#x", got, want)
	}
}

func TestPhantomPartialOverlapWrites(t *testing.T) {
	p := NewPhantom(10)
	p.View(0, 6).CopyFrom(PhantomInput(1, 6))
	p.View(4, 10).CopyFrom(PhantomInput(2, 6))
	if got := p.View(0, 4).Provenance(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("head = %v", got)
	}
	if got := p.View(4, 10).Provenance(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("tail = %v", got)
	}
	// Intersection semantics across the mixed range: no rank covers all.
	if got := p.Provenance(); len(got) != 0 {
		t.Fatalf("mixed-range provenance = %v, want empty", got)
	}
}

func TestPhantomSegmentsCoalesce(t *testing.T) {
	p := NewPhantom(1000)
	for i := 0; i < 1000; i += 10 {
		p.View(i, i+10).CopyFrom(PhantomInput(4, 1000).View(i, i+10))
	}
	ph := p.(phantom)
	if len(ph.t.segs) != 1 {
		t.Fatalf("adjacent equal segments did not coalesce: %d segs", len(ph.t.segs))
	}
}

func TestArenaPoolRecycles(t *testing.T) {
	ResetPoolStats()
	a := NewArena(Dense)
	s := a.Scratch(100)
	if s.Len() != 100 || s.Mode() != Dense {
		t.Fatalf("scratch shape wrong")
	}
	a.Release()
	b := NewArena(Dense)
	b.Scratch(100) // same bucket: should reuse
	b.Release()
	st := PoolStats()
	if st.Gets != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 miss", st)
	}
	if st.InUse != 0 {
		t.Fatalf("buffers leaked: %+v", st)
	}
	if NewArena(Phantom).Scratch(8).Mode() != Phantom {
		t.Error("phantom arena produced wrong mode")
	}
}

func TestRankSetProperties(t *testing.T) {
	f := func(araw, braw []uint8) bool {
		mk := func(raw []uint8) rankSet {
			seen := map[int]bool{}
			var s rankSet
			for _, v := range raw {
				if !seen[int(v%32)] {
					seen[int(v%32)] = true
					s = append(s, int(v%32))
				}
			}
			sortInts(s)
			return s
		}
		a, b := mk(araw), mk(braw)
		u := unionSet(a, b)
		in := intersectSet(a, b)
		// Union contains both; intersection contained in both.
		return subsetOf(a, u) && subsetOf(b, u) && subsetOf(in, a) && subsetOf(in, b) &&
			len(u)+len(in) == len(a)+len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketFor(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}} {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

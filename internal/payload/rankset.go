package payload

import "sort"

// rankSet is a sorted, deduplicated rank list treated as immutable:
// set operations return one of their operands when possible and fresh
// slices otherwise, so segments can share sets freely.
type rankSet []int

func unionSet(a, b rankSet) rankSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	if subsetOf(b, a) {
		return a
	}
	if subsetOf(a, b) {
		return b
	}
	out := make(rankSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func intersectSet(a, b rankSet) rankSet {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if subsetOf(a, b) {
		return a
	}
	if subsetOf(b, a) {
		return b
	}
	var out rankSet
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subsetOf reports whether every element of a is in b.
func subsetOf(a, b rankSet) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

func equalSet(a, b rankSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortInts(v []int) { sort.Ints(v) }

// Package payload splits the simulator's data plane from its timing
// plane. A Payload is one rank-local tensor (or an aliasing view of one)
// moving through device buffers, fabric chunks and collective stages. Two
// implementations share the interface:
//
//   - dense: real float32 data. Collective results are numerically
//     checkable; aggregation scratch buffers come from a size-bucketed
//     sync.Pool so chunk-sized buffers recycle instead of re-allocating
//     per transfer.
//   - phantom: metadata only — length, provenance (which ranks'
//     contributions reached this range) and a positional checksum derived
//     from the provenance. Reduce/forward/alltoall semantics stay
//     checkable without carrying element data.
//
// Both modes report identical Len/SizeBytes for identical operations, and
// the simulation charges time from byte counts alone, so a phantom run of
// a collective produces a bit-identical virtual timeline to the dense run
// of the same seed (DESIGN.md "Data plane vs timing plane").
package payload

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Mode selects the fidelity of the data plane. The zero value is Dense so
// existing float32-driven call sites keep their behaviour.
type Mode uint8

const (
	// Dense payloads carry real float32 elements.
	Dense Mode = iota
	// Phantom payloads carry only length + provenance metadata.
	Phantom
)

func (m Mode) String() string {
	switch m {
	case Dense:
		return "dense"
	case Phantom:
		return "phantom"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Payload is a tensor or tensor view in one of the two modes. Views alias
// their parent: writes through a view are visible to every other view of
// the same tensor, exactly like sub-slicing a []float32.
//
// CopyFrom and AddFrom require equal lengths and equal modes; mixing
// modes in one collective is a programming error and panics.
type Payload interface {
	// Mode reports the fidelity of this payload.
	Mode() Mode
	// Len is the element count.
	Len() int
	// SizeBytes is the wire size (Len()*4); both modes report it
	// identically, which is what keeps timelines mode-independent.
	SizeBytes() int64
	// View returns an aliasing sub-range [start, end) view.
	View(start, end int) Payload
	// CopyFrom overwrites this payload with src.
	CopyFrom(src Payload)
	// AddFrom accumulates every src into this payload (reduce-into):
	// dense adds element-wise; phantom unions provenance.
	AddFrom(srcs ...Payload)
	// Checksum summarises the content: dense hashes the element bits,
	// phantom derives it from provenance and absolute element positions.
	// Checksums are comparable within a mode, not across modes.
	Checksum() uint64
	// Provenance returns the sorted set of ranks whose contributions
	// reached every element of this range (phantom), or nil for dense.
	Provenance() []int
	// Float32 returns the backing data (dense), or nil for phantom.
	Float32() []float32
}

// dense is the real-data implementation: a view over a float32 slice.
type dense struct {
	data []float32
}

// WrapDense wraps an existing float32 tensor as a dense Payload. The
// payload aliases the slice; writes are visible to the caller.
func WrapDense(data []float32) Payload { return dense{data: data} }

// NewDense allocates a zeroed dense payload of n elements (not pooled —
// use Arena.Scratch for recyclable buffers).
func NewDense(n int) Payload { return dense{data: make([]float32, n)} }

func (d dense) Mode() Mode       { return Dense }
func (d dense) Len() int         { return len(d.data) }
func (d dense) SizeBytes() int64 { return int64(len(d.data)) * 4 }

func (d dense) View(start, end int) Payload {
	return dense{data: d.data[start:end]}
}

func (d dense) CopyFrom(src Payload) {
	s := mustDense("CopyFrom", src, len(d.data))
	copy(d.data, s.data)
}

func (d dense) AddFrom(srcs ...Payload) {
	for _, src := range srcs {
		s := mustDense("AddFrom", src, len(d.data))
		for i, v := range s.data {
			d.data[i] += v
		}
	}
}

func (d dense) Checksum() uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range d.data {
		bits := math.Float32bits(v)
		b[0] = byte(bits)
		b[1] = byte(bits >> 8)
		b[2] = byte(bits >> 16)
		b[3] = byte(bits >> 24)
		h.Write(b[:])
	}
	return h.Sum64()
}

func (d dense) Provenance() []int  { return nil }
func (d dense) Float32() []float32 { return d.data }

func mustDense(op string, p Payload, wantLen int) dense {
	s, ok := p.(dense)
	if !ok {
		panic(fmt.Sprintf("payload: %s mode mismatch (dense vs %v)", op, p.Mode()))
	}
	if len(s.data) != wantLen {
		panic(fmt.Sprintf("payload: %s length mismatch %d vs %d", op, wantLen, len(s.data)))
	}
	return s
}

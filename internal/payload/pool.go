package payload

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// The dense scratch pool: power-of-two size buckets of float32 slices,
// shared process-wide. Collectives allocate one scratch buffer per
// in-flight aggregation chunk; pooling turns that from O(chunks)
// allocations per run into O(peak concurrent chunks) for the process.
var pools [48]sync.Pool

var (
	poolGets   atomic.Int64
	poolMisses atomic.Int64
	poolPuts   atomic.Int64
	poolInUse  atomic.Int64
	poolPeak   atomic.Int64
)

// bucketFor returns the pool index whose buffers have capacity >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func getBuf(n int) *[]float32 {
	b := bucketFor(n)
	poolGets.Add(1)
	use := poolInUse.Add(1)
	for {
		peak := poolPeak.Load()
		if use <= peak || poolPeak.CompareAndSwap(peak, use) {
			break
		}
	}
	if v := pools[b].Get(); v != nil {
		return v.(*[]float32)
	}
	poolMisses.Add(1)
	buf := make([]float32, 1<<b)
	return &buf
}

func putBuf(buf *[]float32) {
	poolPuts.Add(1)
	poolInUse.Add(-1)
	pools[bucketFor(cap(*buf))].Put(buf)
}

// PoolStatsSnapshot reports the dense scratch pool's counters.
type PoolStatsSnapshot struct {
	// Gets counts Scratch acquisitions; Misses the subset that had to
	// allocate a fresh buffer.
	Gets, Misses int64
	// Puts counts buffers returned by Arena.Release.
	Puts int64
	// InUse is the number of buffers currently held; Peak the high-water
	// mark since the last reset.
	InUse, Peak int64
}

// PoolStats snapshots the pool counters (benchmarks report Peak as the
// pooled-buffer footprint).
func PoolStats() PoolStatsSnapshot {
	return PoolStatsSnapshot{
		Gets:   poolGets.Load(),
		Misses: poolMisses.Load(),
		Puts:   poolPuts.Load(),
		InUse:  poolInUse.Load(),
		Peak:   poolPeak.Load(),
	}
}

// ResetPoolStats zeroes the counters (buffers stay pooled).
func ResetPoolStats() {
	poolGets.Store(0)
	poolMisses.Store(0)
	poolPuts.Store(0)
	poolPeak.Store(poolInUse.Load())
}

// ptensors recycles phantom backing tensors (segment arrays included), the
// phantom-mode analogue of the dense float32 pool.
var ptensors = sync.Pool{New: func() any { return new(ptensor) }}

func getPtensor(n int) *ptensor {
	poolGets.Add(1)
	use := poolInUse.Add(1)
	for {
		peak := poolPeak.Load()
		if use <= peak || poolPeak.CompareAndSwap(peak, use) {
			break
		}
	}
	t := ptensors.Get().(*ptensor)
	t.n = n
	t.segs = t.segs[:0]
	if n > 0 {
		t.segs = append(t.segs, pseg{start: 0, end: n, prov: nil})
	}
	return t
}

func putPtensor(t *ptensor) {
	poolPuts.Add(1)
	poolInUse.Add(-1)
	ptensors.Put(t)
}

// Arena hands out per-run scratch payloads and releases them all at once
// when the run completes. Dense scratch comes from the shared float32
// pool; phantom scratch reuses pooled segment tensors. Contents are
// UNINITIALISED: callers must CopyFrom before AddFrom, which is exactly
// the executor's aggregation pattern.
//
// Release must only be called when no event can still touch the scratch —
// the executor calls it from the collective's completion countdown, after
// the last delivery.
type Arena struct {
	mode  Mode
	held  []*[]float32
	heldP []*ptensor
}

// NewArena returns an arena producing scratch in the given mode.
func NewArena(mode Mode) *Arena { return &Arena{mode: mode} }

// Mode reports the arena's payload mode.
func (a *Arena) Mode() Mode { return a.mode }

// Scratch returns an n-element scratch payload owned by the arena.
func (a *Arena) Scratch(n int) Payload {
	if a.mode == Phantom {
		t := getPtensor(n)
		a.heldP = append(a.heldP, t)
		return phantom{t: t, start: 0, end: n}
	}
	buf := getBuf(n)
	a.held = append(a.held, buf)
	return dense{data: (*buf)[:n]}
}

// Release returns every scratch buffer/tensor to its pool.
func (a *Arena) Release() {
	for _, buf := range a.held {
		putBuf(buf)
	}
	a.held = nil
	for _, t := range a.heldP {
		putPtensor(t)
	}
	a.heldP = nil
}

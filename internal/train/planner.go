package train

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/blink"
	"adapcc/internal/baseline/msccl"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
)

// Planner prices one collective for the training loop: the backend picks
// its communication graph by its own rules, and the cost is evaluated
// against the fabric's live link state.
type Planner interface {
	Name() string
	// CommTime returns the collective's execution time under current
	// link conditions.
	CommTime(live *synth.Costs, p strategy.Primitive, bytes int64, ranks []int) (time.Duration, error)
}

// strategyBuilder is satisfied by the NCCL and MSCCL baselines.
type strategyBuilder interface {
	Name() string
	BuildStrategy(p strategy.Primitive, bytes int64, ranks []int, root int) (*strategy.Strategy, error)
}

// builderPlanner prices single-strategy backends.
type builderPlanner struct {
	b strategyBuilder
	// singleStream clamps each edge to one stream's rate (NCCL's single
	// channel).
	singleStream bool
}

// NCCLPlanner prices the NCCL baseline.
func NCCLPlanner(env *backend.Env) Planner {
	return builderPlanner{b: nccl.New(env), singleStream: true}
}

// MSCCLPlanner prices the MSCCL baseline.
func MSCCLPlanner(env *backend.Env) Planner { return builderPlanner{b: msccl.New(env)} }

func (p builderPlanner) Name() string { return p.b.Name() }

func (p builderPlanner) CommTime(live *synth.Costs, prim strategy.Primitive, bytes int64, ranks []int) (time.Duration, error) {
	st, err := p.b.BuildStrategy(prim, bytes, ranks, -1)
	if err != nil {
		return 0, err
	}
	costs := live
	if p.singleStream {
		costs = live.SingleStreamView()
	}
	ev, err := synth.Evaluate(costs, st)
	if err != nil {
		return 0, err
	}
	return ev.Time, nil
}

// blinkPlanner prices Blink's barrier-separated stages: within a stage the
// slowest parallel strategy gates; stages sum.
type blinkPlanner struct {
	b *blink.Backend
}

// BlinkPlanner prices the Blink baseline.
func BlinkPlanner(env *backend.Env) Planner { return blinkPlanner{b: blink.New(env)} }

func (p blinkPlanner) Name() string { return "Blink" }

func (p blinkPlanner) CommTime(live *synth.Costs, prim strategy.Primitive, bytes int64, ranks []int) (time.Duration, error) {
	stages, err := p.b.StagePlans(prim, bytes, ranks, -1)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for _, stage := range stages {
		var slowest time.Duration
		for _, st := range stage {
			ev, err := synth.Evaluate(live, st)
			if err != nil {
				return 0, err
			}
			if ev.Time > slowest {
				slowest = ev.Time
			}
		}
		total += slowest
	}
	return total, nil
}

// adapccPlanner chooses graphs with the AdapCC synthesizer (profiled,
// possibly stale costs) and prices them against the live state — the gap
// between the two is what reprofiling closes.
type adapccPlanner struct {
	a *core.AdapCC
}

// AdapCCPlanner prices AdapCC's synthesised strategies.
func AdapCCPlanner(a *core.AdapCC) Planner { return adapccPlanner{a: a} }

func (p adapccPlanner) Name() string { return "AdapCC" }

func (p adapccPlanner) CommTime(live *synth.Costs, prim strategy.Primitive, bytes int64, ranks []int) (time.Duration, error) {
	res, err := p.a.Strategy(prim, bytes, ranks, nil, -1)
	if err != nil {
		return 0, err
	}
	ev, err := synth.Evaluate(live, res.Strategy)
	if err != nil {
		return 0, err
	}
	return ev.Time, nil
}

// PartialCommTime prices a phase-1 partial collective (ready workers with
// relays) — used by the adaptive driver.
func PartialCommTime(a *core.AdapCC, live *synth.Costs, prim strategy.Primitive, bytes int64, ready, relays []int) (time.Duration, error) {
	res, err := a.Strategy(prim, bytes, ready, relays, -1)
	if err != nil {
		return 0, err
	}
	ev, err := synth.Evaluate(live, res.Strategy)
	if err != nil {
		return 0, err
	}
	return ev.Time, nil
}

// CatchupCommTime prices phase 2 with the paper's partial-join semantics:
// chunks that joined the ongoing phase-1 aggregation need no catch-up, so
// only frac ∈ (0,1] of the tensor moves — as one pipelined
// allreduce-shaped pass (reduce the late contributions, broadcast the
// result) over the alive workers, plus the local combine kernel.
func CatchupCommTime(a *core.AdapCC, live *synth.Costs, bytes int64, participants, late []int, frac float64) (time.Duration, error) {
	if len(late) == 0 || frac <= 0 {
		return 0, nil
	}
	if frac > 1 {
		frac = 1
	}
	// Round to 1 MiB so transient fractions reuse cached strategies.
	scaled := (int64(float64(bytes)*frac) + 1<<20 - 1) / (1 << 20) * (1 << 20)
	if scaled < 1<<20 {
		scaled = 1 << 20
	}
	if scaled > bytes {
		scaled = bytes / 4 * 4
	}
	res, err := a.Strategy(strategy.AllReduce, scaled, participants, nil, -1)
	if err != nil {
		return 0, fmt.Errorf("catch-up allreduce: %w", err)
	}
	ev, err := synth.Evaluate(live, res.Strategy)
	if err != nil {
		return 0, err
	}
	// Local combine: one reduce over the late aggregate.
	combine := time.Duration(float64(scaled) / 600e9 * float64(time.Second))
	return ev.Time + combine, nil
}

package train

import (
	"math/rand"
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

func TestWorkloadsCatalog(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("%d workloads, want the paper's 4", len(ws))
	}
	seen := make(map[string]bool)
	for _, w := range ws {
		if w.ParamBytes <= 0 || w.BaseStep <= 0 || w.RefBatch <= 0 {
			t.Errorf("%s has zero fields", w.Name)
		}
		seen[w.Name] = true
	}
	for _, name := range []string{"VGG16", "GPT2", "ViT", "MoE"} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
	}
	if MoE().Collective != strategy.AlltoAll {
		t.Error("MoE must communicate via AlltoAll")
	}
}

func TestComputeTimeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := VGG16()
	gpu := topology.GPUA100

	// Non-positive batch falls back to the reference batch.
	d0 := w.ComputeTime(gpu, 0, rng, 1)
	if d0 <= 0 {
		t.Fatal("zero-batch compute time not positive")
	}
	// Slowdown below 1 is clamped to 1; above 1 stretches time on average.
	rngA := rand.New(rand.NewSource(2))
	rngB := rand.New(rand.NewSource(2))
	plain := w.ComputeTime(gpu, w.RefBatch, rngA, 0.5)
	slowed := w.ComputeTime(gpu, w.RefBatch, rngB, 2)
	if slowed <= plain {
		t.Errorf("slowdown 2 (%v) not slower than clamped 0.5 (%v)", slowed, plain)
	}
	// V100 is slower than A100 for the same draw.
	rngC := rand.New(rand.NewSource(3))
	rngD := rand.New(rand.NewSource(3))
	a100 := w.ComputeTime(topology.GPUA100, w.RefBatch, rngC, 1)
	v100 := w.ComputeTime(topology.GPUV100, w.RefBatch, rngD, 1)
	if v100 <= a100 {
		t.Errorf("V100 (%v) not slower than A100 (%v)", v100, a100)
	}
}

func TestDriverAndPlannerNames(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		planner Planner
		want    string
	}{
		{NCCLPlanner(env), "NCCL"},
		{MSCCLPlanner(env), "MSCCL"},
		{BlinkPlanner(env), "Blink"},
	} {
		if got := tc.planner.Name(); got != tc.want {
			t.Errorf("planner name = %q, want %q", got, tc.want)
		}
		d := NewWaitAllDriver(env, tc.planner, strategy.AllReduce, 1<<20, env.AllRanks())
		if d.Name() != tc.want {
			t.Errorf("wait-all driver name = %q, want %q", d.Name(), tc.want)
		}
	}
}

func TestAdaptiveDriverAccessors(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "AdapCC" {
		t.Errorf("Name() = %q", d.Name())
	}
	if d.Coordinator() == nil {
		t.Error("no coordinator")
	}
	if q := d.Quality(); q != 1 {
		t.Errorf("initial quality = %v, want 1", q)
	}
	if _, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.Reduce, 1<<20, nil, nil); err == nil {
		t.Error("adaptive driver accepted a non-AllReduce primitive")
	}
}

func TestStatsEdgeCases(t *testing.T) {
	var empty Stats
	if empty.Throughput() != 0 {
		t.Error("empty stats report throughput")
	}
	if empty.MeanComm() != 0 {
		t.Error("empty stats report comm time")
	}
	it := IterStats{Spread: time.Millisecond, Exec: 0}
	if it.WaitRatio() != 0 {
		t.Error("zero-exec iteration reports a wait ratio")
	}
}

func TestCatchupCommTimeEdges(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	live := synth.NewLiveCosts(env.Fabric)
	ranks := env.AllRanks()

	// No late workers or no missed fraction: free.
	if d, err := CatchupCommTime(a, live, 64<<20, ranks, nil, 0.5); err != nil || d != 0 {
		t.Errorf("no-late catch-up = (%v, %v), want (0, nil)", d, err)
	}
	if d, err := CatchupCommTime(a, live, 64<<20, ranks, ranks[3:], 0); err != nil || d != 0 {
		t.Errorf("zero-frac catch-up = (%v, %v), want (0, nil)", d, err)
	}
	// frac > 1 clamps to a full pass; monotone in frac.
	full, err := CatchupCommTime(a, live, 64<<20, ranks, ranks[3:], 1.7)
	if err != nil {
		t.Fatal(err)
	}
	half, err := CatchupCommTime(a, live, 64<<20, ranks, ranks[3:], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := CatchupCommTime(a, live, 64<<20, ranks, ranks[3:], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !(tiny <= half && half <= full) {
		t.Errorf("catch-up not monotone in frac: %v / %v / %v", tiny, half, full)
	}
	if tiny <= 0 {
		t.Error("positive frac with late workers should cost something (1 MiB floor)")
	}
}

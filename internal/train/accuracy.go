package train

import "math/rand"

// AccuracySim is the convergence model behind Fig. 19b. It is a standard
// exponential-approach learning curve where each iteration's progress is
// scaled by the *gradient quality* q — the fraction of workers whose
// gradients entered the aggregate:
//
//   - AdapCC (phase 1 + phase 2) and NCCL aggregate every worker: q = 1
//     every iteration, so their curves coincide.
//   - 'Relay Async' discards straggler tensors: q < 1 on straggler
//     iterations, which both slows convergence and lowers the asymptote
//     (gradient noise from inconsistent aggregation).
//   - 'AdapCC-nccl graph' changes only the aggregation *order*; floating
//     point non-associativity is a vanishing perturbation, so q = 1 and
//     the curve matches (the paper's observation that a different graph
//     does not affect convergence).
type AccuracySim struct {
	// MaxAcc is the converged top-1 accuracy with full gradients
	// (VGG16 on the downscaled 100k-image ImageNet: ≈0.68).
	MaxAcc float64
	// Tau is the convergence time constant in iterations.
	Tau float64
	// InitAcc is the random-init accuracy.
	InitAcc float64
	// QualityPenalty scales how strongly dropped gradients depress the
	// reachable asymptote.
	QualityPenalty float64
	// NoiseSigma is per-evaluation measurement noise.
	NoiseSigma float64
}

// DefaultAccuracySim returns the Fig. 19b configuration.
func DefaultAccuracySim() AccuracySim {
	return AccuracySim{
		MaxAcc:         0.68,
		Tau:            900,
		InitAcc:        0.02,
		QualityPenalty: 0.35,
		NoiseSigma:     0.004,
	}
}

// Curve simulates the accuracy trajectory given per-iteration gradient
// qualities; the returned slice has one point per iteration.
func (a AccuracySim) Curve(qualities []float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(qualities))
	acc := a.InitAcc
	for i, q := range qualities {
		if q > 1 {
			q = 1
		}
		if q < 0 {
			q = 0
		}
		// Dropped gradients both shrink the step (×q) and pull the
		// asymptote down.
		target := a.MaxAcc * (1 - a.QualityPenalty*(1-q))
		acc += q * (target - acc) / a.Tau
		noisy := acc + rng.NormFloat64()*a.NoiseSigma
		if noisy < 0 {
			noisy = 0
		}
		if noisy > 1 {
			noisy = 1
		}
		out[i] = noisy
	}
	return out
}

// FinalAccuracy returns the mean of the last window points of a curve.
func FinalAccuracy(curve []float64, window int) float64 {
	if len(curve) == 0 {
		return 0
	}
	if window <= 0 || window > len(curve) {
		window = len(curve)
	}
	sum := 0.0
	for _, v := range curve[len(curve)-window:] {
		sum += v
	}
	return sum / float64(window)
}

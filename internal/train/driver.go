package train

import (
	"fmt"
	"sort"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/core"
	"adapcc/internal/health"
	"adapcc/internal/relay"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
)

// Driver advances one iteration's communication given each worker's
// gradient-ready offsets.
type Driver interface {
	Name() string
	// Alive returns the worker ranks still in the training group.
	Alive() []int
	// Begin schedules the iteration: readyAt maps each alive rank to its
	// compute-completion offset from now. done fires when communication
	// completes, with the pure execution time (excluding straggler
	// waiting) it consumed.
	Begin(readyAt map[int]time.Duration, done func(execTime time.Duration))
}

// WaitAllDriver models existing libraries: the collective starts only once
// every worker is ready (paper Sec. II-C), then runs the backend's graph.
type WaitAllDriver struct {
	env     *backend.Env
	planner Planner
	prim    strategy.Primitive
	bytes   int64
	world   []int
}

// NewWaitAllDriver builds a wait-for-all driver.
func NewWaitAllDriver(env *backend.Env, planner Planner, prim strategy.Primitive, bytes int64, world []int) *WaitAllDriver {
	return &WaitAllDriver{env: env, planner: planner, prim: prim, bytes: bytes, world: append([]int(nil), world...)}
}

// Name implements Driver.
func (d *WaitAllDriver) Name() string { return d.planner.Name() }

// Alive implements Driver.
func (d *WaitAllDriver) Alive() []int { return append([]int(nil), d.world...) }

// Begin implements Driver.
func (d *WaitAllDriver) Begin(readyAt map[int]time.Duration, done func(execTime time.Duration)) {
	var maxReady time.Duration
	for _, r := range d.world {
		at, ok := readyAt[r]
		if !ok {
			panic(fmt.Sprintf("train: worker %d never becomes ready under a wait-all backend", r))
		}
		if at > maxReady {
			maxReady = at
		}
	}
	eng := d.env.Engine
	eng.After(maxReady, func() {
		live := synth.NewLiveCosts(d.env.Fabric)
		exec, err := d.planner.CommTime(live, d.prim, d.bytes, d.world)
		if err != nil {
			panic(fmt.Sprintf("train: %s comm time: %v", d.planner.Name(), err))
		}
		eng.After(exec, func() { done(exec) })
	})
}

// AdaptiveDriver runs the real relay coordinator with analytically priced
// communication callbacks: all decision logic (5 ms cycles, break-even ski
// rental, relay selection, fault exclusion) is the production code path.
type AdaptiveDriver struct {
	a    *core.AdapCC
	co   *relay.Coordinator
	prim strategy.Primitive
	// tensor bytes per iteration
	bytes int64

	execTotal time.Duration
	// DropLateTensors switches to the 'Relay Async' arm of Fig. 19b:
	// phase 2 is skipped entirely and late gradients are discarded.
	DropLateTensors bool
	// lastQuality records the fraction of workers whose gradients were
	// aggregated in the last iteration (1.0 with phase 2).
	lastQuality float64

	// healer watches faulted ranks and readmits them once their hardware
	// passes probation (nil until EnableHealing); onFault is the user's
	// fault observer, invoked after the healer registered the ranks.
	healer  *health.Monitor
	onFault func([]int)

	// per-iteration timing for partial-join accounting
	iterStart   time.Duration
	readyAt     map[int]time.Duration
	phase1Start time.Duration
	phase1End   time.Duration
}

// NewAdaptiveDriver builds the AdapCC adaptive driver.
func NewAdaptiveDriver(a *core.AdapCC, world []int, prim strategy.Primitive, bytes int64, policy relay.Policy, onFault func([]int)) (*AdaptiveDriver, error) {
	if prim != strategy.AllReduce {
		return nil, fmt.Errorf("train: adaptive relay control drives AllReduce (got %v)", prim)
	}
	d := &AdaptiveDriver{a: a, prim: prim, bytes: bytes, lastQuality: 1, onFault: onFault}
	est := &core.PredictEstimator{A: a, TensorBytes: bytes, World: len(world)}
	co, err := relay.NewCoordinator(relay.Config{
		Engine:    a.Env().Engine,
		World:     world,
		Policy:    policy,
		Estimator: est,
		Callbacks: relay.Callbacks{
			StartFull:   d.startFull,
			StartPhase1: d.startPhase1,
			StartPhase2: d.startPhase2,
			OnFault:     d.faulted,
		},
	})
	if err != nil {
		return nil, err
	}
	d.co = co
	return d, nil
}

// Name implements Driver.
func (d *AdaptiveDriver) Name() string { return "AdapCC" }

// Alive implements Driver.
func (d *AdaptiveDriver) Alive() []int { return d.co.Alive() }

// Coordinator exposes relay statistics (Figs. 15, 19d).
func (d *AdaptiveDriver) Coordinator() *relay.Coordinator { return d.co }

// Quality returns the last iteration's gradient-aggregation fraction.
func (d *AdaptiveDriver) Quality() float64 { return d.lastQuality }

// Readmit implements Readmitter: a restarted worker rejoins the group from
// the next iteration, with no job restart (elastic scale-up).
func (d *AdaptiveDriver) Readmit(rank int) { d.co.Readmit(rank) }

// faulted is the coordinator's OnFault hook: hand every excluded rank to
// the healer (when installed) before the user's observer sees it.
func (d *AdaptiveDriver) faulted(ranks []int) {
	if d.healer != nil {
		for _, r := range ranks {
			d.healer.WatchRank(r)
		}
	}
	if d.onFault != nil {
		d.onFault(ranks)
	}
}

// EnableHealing installs a health monitor over the coordinator's fault
// path (idempotent): ranks excluded by T_fault or link-fault reports are
// watched, probed over the live fabric and device, and — after passing
// probation — readmitted into the next iteration, with the healed edges'
// fresh measurements absorbed into the cost model. The data loader
// redistributes back automatically: the trainer recomputes per-GPU batches
// from Alive() every iteration.
func (d *AdaptiveDriver) EnableHealing(opts health.Options) *health.Monitor {
	if d.healer != nil {
		return d.healer
	}
	env := d.a.Env()
	d.healer = health.New(env.Engine, env.Fabric, env.GPUs, opts, health.Hooks{
		OnHeal: func(ev health.Event) {
			switch ev.Kind {
			case health.KindRank:
				d.a.ReadmitRank(ev.Rank)
				d.co.Readmit(ev.Rank)
			case health.KindLink:
				d.a.ReadmitLink(ev.From, ev.To)
			}
			d.a.AbsorbMeasurements(ev.Measurements)
		},
	})
	return d.healer
}

// Healer returns the driver's health monitor (nil before EnableHealing).
func (d *AdaptiveDriver) Healer() *health.Monitor { return d.healer }

// Begin implements Driver.
func (d *AdaptiveDriver) Begin(readyAt map[int]time.Duration, done func(execTime time.Duration)) {
	d.execTotal = 0
	d.lastQuality = 1
	eng := d.a.Env().Engine
	d.iterStart = eng.Now()
	d.readyAt = readyAt
	d.phase1Start, d.phase1End = 0, 0
	d.co.BeginIteration(func() { done(d.execTotal) })
	ranks := make([]int, 0, len(readyAt))
	for r := range readyAt {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		r := r
		eng.After(readyAt[r], func() { d.co.WorkerReady(r) })
	}
}

func (d *AdaptiveDriver) startFull(ranks []int, cdone func()) {
	d.chargeComm(func(live *synth.Costs) (time.Duration, error) {
		return AdapCCPlanner(d.a).CommTime(live, d.prim, d.bytes, ranks)
	}, cdone)
}

func (d *AdaptiveDriver) startPhase1(ready, relays []int, cdone func()) {
	d.phase1Start = d.a.Env().Engine.Now()
	d.chargeComm(func(live *synth.Costs) (time.Duration, error) {
		t, err := PartialCommTime(d.a, live, d.prim, d.bytes, ready, relays)
		d.phase1End = d.phase1Start + t
		return t, err
	}, cdone)
	if d.DropLateTensors {
		world := len(ready) + len(relays)
		d.lastQuality = float64(len(ready)) / float64(world)
	}
}

// lateFraction estimates how much of the late workers' data missed the
// phase-1 aggregation (paper Sec. IV-C: chunks becoming ready during
// phase 1 join the ongoing aggregation at matching buffer offsets; only
// the rest needs phase-2 catch-up).
func (d *AdaptiveDriver) lateFraction(late []int) float64 {
	dur := (d.phase1End - d.phase1Start).Seconds()
	if dur <= 0 {
		return 1
	}
	maxFrac := 0.0
	for _, l := range late {
		ready := d.iterStart + d.readyAt[l]
		frac := 1.0
		if ready < d.phase1End {
			frac = (ready - d.phase1Start).Seconds() / dur
			if frac < 0.05 {
				frac = 0.05
			}
		}
		if frac > maxFrac {
			maxFrac = frac
		}
	}
	return maxFrac
}

func (d *AdaptiveDriver) startPhase2(participants, late []int, cdone func()) {
	if d.DropLateTensors {
		// Relay Async: discard late tensors — no phase 2 cost, but the
		// gradient quality drops (Fig. 19b).
		cdone()
		return
	}
	frac := d.lateFraction(late)
	d.chargeComm(func(live *synth.Costs) (time.Duration, error) {
		return CatchupCommTime(d.a, live, d.bytes, participants, late, frac)
	}, cdone)
}

func (d *AdaptiveDriver) chargeComm(price func(*synth.Costs) (time.Duration, error), cdone func()) {
	live := synth.NewLiveCosts(d.a.Env().Fabric)
	exec, err := price(live)
	if err != nil {
		panic(fmt.Sprintf("train: adaptive comm pricing: %v", err))
	}
	d.execTotal += exec
	d.a.Env().Engine.After(exec, cdone)
}

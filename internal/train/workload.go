// Package train simulates distributed DNN training over the AdapCC stack
// (paper Sec. VI-D): the four evaluation workloads (VGG16, GPT-2, ViT,
// MoE), a per-GPU compute-time model calibrated to the A100/V100 speed
// ratio, straggler variance, online-serving interference, data-loader
// redistribution after faults, and a convergence model for the accuracy
// experiment (Fig. 19b).
//
// Training iterations use the analytic Eq. 2–6 evaluator (cross-validated
// against the event-driven executor in the collective tests) so that 10⁴
// iteration runs remain tractable: communication strategies are still the
// real synthesised/baseline graphs, and they are priced against the
// fabric's *live* link state, so volatility and reprofiling behave exactly
// as in full execution.
package train

import (
	"math/rand"
	"time"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// Workload is one benchmark model.
type Workload struct {
	Name string
	// ParamBytes is the gradient volume synchronised per iteration (for
	// MoE: the token volume exchanged by AlltoAll).
	ParamBytes int64
	// RefBatch is the per-GPU batch the paper uses by default.
	RefBatch int
	// BaseStep is the forward+backward time on an A100 at RefBatch.
	BaseStep time.Duration
	// Collective is the per-iteration primitive (AllReduce for
	// data-parallel models, AlltoAll for MoE token dispatch).
	Collective strategy.Primitive
}

// The paper's four workloads with their reported model sizes.
func VGG16() Workload {
	return Workload{Name: "VGG16", ParamBytes: 528 << 20, RefBatch: 128, BaseStep: 160 * time.Millisecond, Collective: strategy.AllReduce}
}

// GPT2 uses the personal-chat dataset with local batch 16.
func GPT2() Workload {
	return Workload{Name: "GPT2", ParamBytes: 475 << 20, RefBatch: 16, BaseStep: 210 * time.Millisecond, Collective: strategy.AllReduce}
}

// ViT trains on ImageNet.
func ViT() Workload {
	return Workload{Name: "ViT", ParamBytes: 208 << 20, RefBatch: 128, BaseStep: 130 * time.Millisecond, Collective: strategy.AllReduce}
}

// MoE is the fastMoE-style expert-parallel model: one expert per GPU, the
// collective is the token AlltoAll.
func MoE() Workload {
	return Workload{Name: "MoE", ParamBytes: 512 << 20, RefBatch: 128, BaseStep: 150 * time.Millisecond, Collective: strategy.AlltoAll}
}

// Workloads lists all four evaluation models.
func Workloads() []Workload {
	return []Workload{VGG16(), GPT2(), ViT(), MoE()}
}

// computeNoiseSigma is the relative iteration-time jitter of a healthy
// worker (calibrated so the homogeneous wait-time-ratio CDF of Fig. 3b has
// its median above 10%).
const computeNoiseSigma = 0.06

// Heavy-tail hiccups: occasionally an iteration runs much longer (garbage
// collection, data-loader stalls, page faults) — the stragglers that make
// even homogeneous clusters pick relays (Fig. 15's spread-out homogeneous
// distribution).
const (
	hiccupProb = 0.06
	hiccupMin  = 1.25
	hiccupMax  = 1.8
)

// ComputeTime draws one worker's forward+backward duration: base time
// scaled by batch, divided by the GPU generation's throughput, with
// lognormal-ish jitter and an external slowdown factor (online-serving
// interference, Fig. 18b).
func (w Workload) ComputeTime(gpu topology.GPUModel, batch int, rng *rand.Rand, slowdown float64) time.Duration {
	if batch <= 0 {
		batch = w.RefBatch
	}
	if slowdown < 1 {
		slowdown = 1
	}
	base := w.BaseStep.Seconds() * float64(batch) / float64(w.RefBatch) / gpu.ComputeScale()
	noise := 1 + rng.NormFloat64()*computeNoiseSigma
	if noise < 0.7 {
		noise = 0.7
	}
	if rng.Float64() < hiccupProb {
		noise *= hiccupMin + rng.Float64()*(hiccupMax-hiccupMin)
	}
	return time.Duration(base * noise * slowdown * float64(time.Second))
}

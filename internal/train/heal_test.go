package train

import (
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/health"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestHealReadmitsRecoveredRank runs the full elastic-healing loop on the
// training stack: a rank's device hangs from the start, the coordinator
// declares it faulty after T_fault, the health monitor probes it (kernel
// probes fail while the hang lasts), and once the device recovers the rank
// passes probation and is readmitted into the training group — without the
// trainer's ReviveAfter readmit path (HealReadmit hands that to the
// monitor).
func TestHealReadmitsRecoveredRank(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	world := env.AllRanks()
	const victim = 3
	const recoverAt = 6 * time.Second

	// The device hangs until recoverAt: links stay healthy, so only the
	// monitor's kernel probe sees the fault — and sees it end.
	env.GPUs[victim].SetKernelStall(func(now sim.Time) time.Duration {
		if now < sim.Time(recoverAt) {
			return time.Duration(sim.Time(recoverAt) - now)
		}
		return 0
	})

	var faulted []int
	d, err := NewAdaptiveDriver(a, world, strategy.AllReduce, ViT().ParamBytes, nil,
		func(f []int) { faulted = append(faulted, f...) })
	if err != nil {
		t.Fatal(err)
	}
	m := d.EnableHealing(health.Options{
		Quarantine:    100 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		ProbationK:    3,
		GiveUpAfter:   200, // never condemn: the hang is long but finite
		MaxQuarantine: 500 * time.Millisecond,
	})
	if d.EnableHealing(health.Options{}) != m {
		t.Fatal("EnableHealing is not idempotent")
	}

	const iterations = 30
	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: iterations, Seed: 3,
		DeadAfter:   map[int]int{victim: 0},
		ReviveAfter: map[int]int{victim: 3},
		HealReadmit: true,
	})
	if len(stats.Iters) != iterations {
		t.Fatalf("completed %d/%d iterations", len(stats.Iters), iterations)
	}
	if len(faulted) == 0 || faulted[0] != victim {
		t.Fatalf("faulted = %v, want [%d ...]", faulted, victim)
	}
	if m.Healed() != 1 {
		t.Fatalf("healed = %d, want 1", m.Healed())
	}
	readmitted := d.Coordinator().Stats().ReadmittedRanks
	found := false
	for _, r := range readmitted {
		if r == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("ReadmittedRanks = %v, want to contain %d", readmitted, victim)
	}
	alive := false
	for _, r := range d.Alive() {
		if r == victim {
			alive = true
		}
	}
	if !alive {
		t.Fatalf("healed rank %d not in final group %v", victim, d.Alive())
	}
}

// TestHealReadmitWaitsForRecovery asserts the negative: with HealReadmit
// the trainer never readmits on its own, so a rank whose device stays hung
// for the whole run is excluded at the end even though ReviveAfter names
// it.
func TestHealReadmitWaitsForRecovery(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	world := env.AllRanks()
	const victim = 0

	// Hung forever: kernel probes always fail.
	env.GPUs[victim].SetKernelStall(func(now sim.Time) time.Duration {
		return time.Hour
	})

	d, err := NewAdaptiveDriver(a, world, strategy.AllReduce, ViT().ParamBytes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := d.EnableHealing(health.Options{
		Quarantine:    100 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		ProbationK:    3,
		GiveUpAfter:   5, // condemn quickly so the engine drains
		MaxQuarantine: 500 * time.Millisecond,
	})

	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: 12, Seed: 5,
		DeadAfter:   map[int]int{victim: 0},
		ReviveAfter: map[int]int{victim: 3},
		HealReadmit: true,
	})
	if len(stats.Iters) != 12 {
		t.Fatalf("completed %d/12 iterations", len(stats.Iters))
	}
	if m.Healed() != 0 {
		t.Fatalf("hung rank healed %d times", m.Healed())
	}
	if m.Condemned() != 1 {
		t.Fatalf("condemned = %d, want 1", m.Condemned())
	}
	for _, r := range d.Alive() {
		if r == victim {
			t.Fatalf("hung rank %d readmitted into %v", victim, d.Alive())
		}
	}
}

package train

import (
	"fmt"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/payload"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
)

// DefaultBucketBytes matches PyTorch DDP's 25 MiB gradient buckets.
const DefaultBucketBytes = 25 << 20

// BucketSchedule models DDP's communication hook (paper Sec. VI-A: "we
// provide a communication hook for PyTorch DDP"): the backward pass
// produces gradient buckets back to front, and each bucket's AllReduce is
// submitted to the work queue as soon as it is ready, overlapping
// communication with the rest of the backward computation.
type BucketSchedule struct {
	// Buckets holds each bucket's byte size, in production order.
	Buckets []int64
	// ReadyAt holds each bucket's readiness offset within the backward
	// pass (monotone non-decreasing).
	ReadyAt []time.Duration
	// Mode selects the payload data plane for the bucket AllReduces
	// (Dense default). Phantom skips materialising gradient tensors while
	// producing the identical timeline.
	Mode payload.Mode
}

// NewBucketSchedule splits a model's gradients into buckets and spreads
// their readiness uniformly across the backward pass (gradients arrive
// back to front as backprop walks the layers).
func NewBucketSchedule(paramBytes int64, bucketBytes int64, backward time.Duration) BucketSchedule {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	var s BucketSchedule
	remaining := paramBytes
	for remaining > 0 {
		b := bucketBytes
		if b > remaining {
			b = remaining
		}
		s.Buckets = append(s.Buckets, b/4*4)
		remaining -= b
	}
	n := len(s.Buckets)
	for i := 0; i < n; i++ {
		// Bucket i becomes ready after (i+1)/n of the backward pass.
		s.ReadyAt = append(s.ReadyAt, backward*time.Duration(i+1)/time.Duration(n))
	}
	return s
}

// RunBucketedIteration drives one DDP iteration over an ordered work
// queue: buckets are submitted as the (simulated) backward pass produces
// them and execute in order; onDone receives the iteration's communication
// tail — the time between the backward pass finishing and the last
// bucket's AllReduce completing (the part communication failed to hide) —
// and the total iteration span.
func RunBucketedIteration(a *core.AdapCC, q *core.Queue, sched BucketSchedule, onDone func(tail, total time.Duration)) error {
	if len(sched.Buckets) == 0 {
		return fmt.Errorf("train: empty bucket schedule")
	}
	env := a.Env()
	eng := env.Engine
	start := eng.Now()
	backwardEnd := start + sched.ReadyAt[len(sched.ReadyAt)-1]
	ranks := env.AllRanks()

	done := sim.NewCountdown(len(sched.Buckets), func() {
		total := eng.Now() - start
		tail := eng.Now() - backwardEnd
		if tail < 0 {
			tail = 0
		}
		if onDone != nil {
			onDone(tail, total)
		}
	})
	for i := range sched.Buckets {
		bytes := sched.Buckets[i]
		at := sched.ReadyAt[i]
		eng.At(start+at, func() {
			req := backend.Request{
				Primitive: strategy.AllReduce,
				Bytes:     bytes,
				Root:      -1,
				Mode:      sched.Mode,
				OnDone:    func(collective.Result) { done.Done() },
			}
			if sched.Mode == payload.Dense {
				req.Inputs = backend.MakeInputs(ranks, bytes)
			}
			q.Submit(req)
		})
	}
	return nil
}

package train

import (
	"math/rand"
	"testing"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// TestChaosRandomFaultsNeverHang randomises worker deaths (and some
// revivals) across seeds and asserts the adaptive training loop always
// completes every iteration with a sane world size — the end-to-end
// no-deadlock property of the coordinator + executor + trainer stack.
func TestChaosRandomFaultsNeverHang(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const iterations = 16
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			env, a := setupAdapCC(t, c)
			world := env.AllRanks()

			// 1–2 random victims die at random iterations; some rejoin.
			dead := make(map[int]int)
			revive := make(map[int]int)
			nVictims := 1 + rng.Intn(2)
			perm := rng.Perm(len(world))
			for v := 0; v < nVictims; v++ {
				r := world[perm[v]]
				at := 2 + rng.Intn(iterations-6)
				dead[r] = at
				if rng.Intn(2) == 0 {
					revive[r] = at + 4 + rng.Intn(4)
				}
			}

			var faulted []int
			d, err := NewAdaptiveDriver(a, world, strategy.AllReduce, ViT().ParamBytes, nil,
				func(f []int) { faulted = append(faulted, f...) })
			if err != nil {
				t.Fatal(err)
			}
			stats := runTraining(t, Config{
				Workload: ViT(), Env: env, Cluster: c, Driver: d,
				Iterations: iterations, Seed: seed,
				DeadAfter:   dead,
				ReviveAfter: revive,
			})
			if len(stats.Iters) != iterations {
				t.Fatalf("seed %d: completed %d/%d iterations (dead=%v revive=%v)",
					seed, len(stats.Iters), iterations, dead, revive)
			}
			// Every non-revived victim is excluded; revived ones are back.
			alive := make(map[int]bool)
			for _, r := range d.Alive() {
				alive[r] = true
			}
			for r := range dead {
				if _, revives := revive[r]; revives {
					if !alive[r] {
						t.Errorf("seed %d: revived rank %d still excluded", seed, r)
					}
				} else if alive[r] {
					t.Errorf("seed %d: dead rank %d still in the group", seed, r)
				}
			}
			for _, f := range faulted {
				if _, wasDead := dead[f]; !wasDead {
					t.Errorf("seed %d: healthy rank %d declared faulty", seed, f)
				}
			}
			// Iterations kept making progress: total time strictly grows.
			for i, it := range stats.Iters {
				if it.Total <= 0 {
					t.Errorf("seed %d: iteration %d has non-positive duration", seed, i)
				}
			}
		})
	}
}

package train

import (
	"fmt"
	"math/rand"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/fabric"
	"adapcc/internal/topology"
)

// Interference models co-located online-serving workloads (Fig. 18b):
// every ResampleEvery of virtual time, 0–2 GPUs per server are chosen as
// victims. CPU cache and memory-bandwidth contention on the affinity
// socket slows both the victims' compute and their host data path (the
// GPU↔NIC PCIe movement that collectives cross when GPU-Direct staging
// competes with the online task) — the latter is why wait-all backends,
// whose fixed graphs keep routing through the victim, lose more than
// AdapCC, which relays around non-ready workers.
type Interference struct {
	// LevelPct is the online task's CPU utilisation, 0–400 (%).
	LevelPct float64
	// ResampleEvery is the victim re-selection period (paper: 5 min).
	ResampleEvery time.Duration

	rng       *rand.Rand
	fab       *fabric.Fabric
	graph     *topology.Graph
	byServer  map[int][]int
	victims   map[int]bool
	nextPick  time.Duration
	resamples int
}

// NewInterference builds an interference schedule over a cluster.
func NewInterference(c *topology.Cluster, levelPct float64, rng *rand.Rand) *Interference {
	inf := &Interference{
		LevelPct:      levelPct,
		ResampleEvery: 5 * time.Minute,
		rng:           rng,
		byServer:      make(map[int][]int),
		victims:       make(map[int]bool),
	}
	rank := 0
	for si, srv := range c.Servers {
		for range srv.GPUs {
			inf.byServer[si] = append(inf.byServer[si], rank)
			rank++
		}
	}
	return inf
}

// AttachFabric makes the schedule also degrade victims' GPU↔NIC host
// paths on the live fabric.
func (inf *Interference) AttachFabric(fab *fabric.Fabric) {
	inf.fab = fab
	inf.graph = fab.Graph()
}

// slowdownPerLevel converts the CPU interference level into a compute
// slowdown: at 400% utilisation a victim's iteration takes ~1.3× longer
// (cache and memory-bandwidth contention on the affinity socket).
const slowdownPerLevel = 0.08 / 100

// Slowdown returns the current compute multiplier for a rank, resampling
// victims if the window elapsed.
func (inf *Interference) Slowdown(now time.Duration, rank int) float64 {
	if inf == nil || inf.LevelPct <= 0 {
		return 1
	}
	for now >= inf.nextPick {
		inf.resample()
		inf.nextPick += inf.ResampleEvery
	}
	if inf.victims[rank] {
		return 1 + slowdownPerLevel*inf.LevelPct
	}
	return 1
}

func (inf *Interference) resample() {
	inf.resamples++
	old := inf.victims
	inf.victims = make(map[int]bool)
	for _, ranks := range inf.byServer {
		n := inf.rng.Intn(3) // 0–2 victims per server
		perm := inf.rng.Perm(len(ranks))
		for i := 0; i < n && i < len(ranks); i++ {
			inf.victims[ranks[perm[i]]] = true
		}
	}
	if inf.fab == nil {
		return
	}
	// Host-path contention is sharper than the compute slowdown: the
	// online task and the staging copies fight for the same memory
	// bandwidth, so the victim's PCIe path degrades ~4× faster.
	slow := 1 + 4*slowdownPerLevel*inf.LevelPct
	for r := range old {
		if !inf.victims[r] {
			inf.setHostPathScale(r, 1)
		}
	}
	for r := range inf.victims {
		inf.setHostPathScale(r, 1/slow)
	}
}

// setHostPathScale rescales a victim GPU's PCIe edges to/from its NICs.
func (inf *Interference) setHostPathScale(rank int, scale float64) {
	gid, ok := inf.graph.GPUByRank(rank)
	if !ok {
		return
	}
	for _, e := range inf.graph.Edges() {
		if e.Type != topology.LinkPCIe {
			continue
		}
		if e.From == gid || e.To == gid {
			inf.fab.SetScale(e.ID, scale)
		}
	}
}

// Config drives one training run.
type Config struct {
	Workload Workload
	Env      *backend.Env
	Cluster  *topology.Cluster
	Driver   Driver
	// Iterations to run.
	Iterations int
	// BatchPerGPU defaults to the workload's RefBatch. The global batch
	// (BatchPerGPU × initial world size) stays constant after faults —
	// survivors' per-GPU batch grows (data-loader redistribution).
	BatchPerGPU int
	// Interference (optional) slows victim workers.
	Interference *Interference
	// ReprofileEvery triggers Reprofile every N iterations (0 = never).
	ReprofileEvery int
	// Reprofile blocks training while the backend reconstructs its
	// communication graph (AdapCC's profiling period hook).
	Reprofile func(done func())
	// OnIteration, when set, observes each completed iteration.
	OnIteration func(i int, stats IterStats)
	// DeadAfter maps a rank to the iteration at which it crashes: from
	// then on it never reports ready. Only meaningful with the adaptive
	// driver, whose coordinator excludes it as faulty; a wait-all
	// backend would hang (which is exactly the paper's point about
	// NCCL).
	DeadAfter map[int]int
	// ReviveAfter maps a rank to the iteration at which it rejoins after
	// a crash (elastic scale-up, Sec. IV-C(2)): the trainer readmits it
	// through the driver and it computes again from that iteration. The
	// data loader re-redistributes, shrinking survivors' per-GPU batch
	// back. Requires a driver implementing Readmitter.
	ReviveAfter map[int]int
	// HealReadmit leaves re-admission to an external healing path (e.g.
	// AdaptiveDriver.EnableHealing): ReviveAfter still gates when a
	// revived rank's compute returns, but the trainer stops calling
	// Readmit itself — the rank rejoins the group only when the health
	// monitor promotes its hardware.
	HealReadmit bool
	// Seed drives the compute-noise streams.
	Seed int64
}

// IterStats is one iteration's timing breakdown.
type IterStats struct {
	// Spread is maxReady − minReady (straggler gap).
	Spread time.Duration
	// Exec is the pure communication execution time.
	Exec time.Duration
	// Comm is wait + execution, the paper's "communication time"
	// measure of Fig. 14 (from the first ready worker to completion).
	Comm time.Duration
	// Total is the full iteration time (compute + comm).
	Total time.Duration
}

// WaitRatio is the Fig. 3b metric: straggler wait over execution time.
func (s IterStats) WaitRatio() float64 {
	if s.Exec <= 0 {
		return 0
	}
	return s.Spread.Seconds() / s.Exec.Seconds()
}

// Stats aggregates a training run.
type Stats struct {
	Iters       []IterStats
	Makespan    time.Duration
	GlobalBatch int
}

// Throughput returns samples/second (Fig. 16/17 metric).
func (s *Stats) Throughput() float64 {
	if len(s.Iters) == 0 || s.Makespan <= 0 {
		return 0
	}
	return float64(s.GlobalBatch) * float64(len(s.Iters)) / s.Makespan.Seconds()
}

// MeanComm returns the average per-iteration communication time.
func (s *Stats) MeanComm() time.Duration {
	if len(s.Iters) == 0 {
		return 0
	}
	var sum time.Duration
	for _, it := range s.Iters {
		sum += it.Comm
	}
	return sum / time.Duration(len(s.Iters))
}

// WaitRatios returns the per-iteration wait ratios (for CDFs).
func (s *Stats) WaitRatios() []float64 {
	out := make([]float64, len(s.Iters))
	for i, it := range s.Iters {
		out[i] = it.WaitRatio()
	}
	return out
}

// Trainer runs the iteration loop on the simulation engine.
type Trainer struct {
	cfg   Config
	rng   *rand.Rand
	stats *Stats
	start time.Duration
}

// Option configures New, in the package-wide With* functional-option
// style (see doc.go of internal/comm for the convention).
type Option func(*Config)

// WithBatchPerGPU overrides the per-GPU batch (default: the workload's
// reference batch).
func WithBatchPerGPU(n int) Option {
	return func(c *Config) { c.BatchPerGPU = n }
}

// WithInterference slows victim workers with the given schedule.
func WithInterference(inf *Interference) Option {
	return func(c *Config) { c.Interference = inf }
}

// WithReprofile blocks training every `every` iterations while reprofile
// runs (AdapCC's profiling-period hook; call done to resume).
func WithReprofile(every int, reprofile func(done func())) Option {
	return func(c *Config) { c.ReprofileEvery, c.Reprofile = every, reprofile }
}

// WithOnIteration observes each completed iteration.
func WithOnIteration(f func(i int, stats IterStats)) Option {
	return func(c *Config) { c.OnIteration = f }
}

// WithDeadAfter crashes each rank at the given iteration.
func WithDeadAfter(deaths map[int]int) Option {
	return func(c *Config) { c.DeadAfter = deaths }
}

// WithReviveAfter rejoins each crashed rank at the given iteration
// (elastic scale-up; requires a driver implementing Readmitter).
func WithReviveAfter(revivals map[int]int) Option {
	return func(c *Config) { c.ReviveAfter = revivals }
}

// WithHealReadmit leaves re-admission of revived ranks to an external
// healing path instead of a scripted Readmit.
func WithHealReadmit() Option {
	return func(c *Config) { c.HealReadmit = true }
}

// WithSeed seeds the compute-noise streams.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// New builds a trainer for the workload on the environment:
//
//	tr, err := train.New(w, env, cl, driver, 30, train.WithSeed(7))
func New(w Workload, env *backend.Env, cl *topology.Cluster, d Driver, iterations int, options ...Option) (*Trainer, error) {
	cfg := Config{Workload: w, Env: env, Cluster: cl, Driver: d, Iterations: iterations}
	for _, o := range options {
		o(&cfg)
	}
	return NewTrainer(cfg)
}

// NewTrainer validates an explicit Config.
//
// Deprecated: use New with With* functional options.
func NewTrainer(cfg Config) (*Trainer, error) {
	if cfg.Env == nil || cfg.Cluster == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("train: missing env, cluster or driver")
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("train: non-positive iteration count")
	}
	if cfg.BatchPerGPU <= 0 {
		cfg.BatchPerGPU = cfg.Workload.RefBatch
	}
	if cfg.Interference != nil && cfg.Interference.fab == nil {
		cfg.Interference.AttachFabric(cfg.Env.Fabric)
	}
	return &Trainer{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Start launches the run; onDone receives the aggregated stats. All work
// happens on the environment's engine.
func (t *Trainer) Start(onDone func(*Stats)) {
	world := t.cfg.Driver.Alive()
	t.stats = &Stats{
		GlobalBatch: t.cfg.BatchPerGPU * len(world),
		Iters:       make([]IterStats, 0, t.cfg.Iterations),
	}
	t.start = t.cfg.Env.Engine.Now()
	t.iterate(0, onDone)
}

func (t *Trainer) iterate(i int, onDone func(*Stats)) {
	if i >= t.cfg.Iterations {
		t.stats.Makespan = t.cfg.Env.Engine.Now() - t.start
		onDone(t.stats)
		return
	}
	if t.cfg.ReprofileEvery > 0 && t.cfg.Reprofile != nil && i > 0 && i%t.cfg.ReprofileEvery == 0 {
		t.cfg.Reprofile(func() { t.runIteration(i, onDone) })
		return
	}
	t.runIteration(i, onDone)
}

// Readmitter is the optional driver capability behind Config.ReviveAfter:
// returning a previously excluded worker to the group without a restart.
type Readmitter interface {
	Readmit(rank int)
}

func (t *Trainer) runIteration(i int, onDone func(*Stats)) {
	eng := t.cfg.Env.Engine
	if rd, ok := t.cfg.Driver.(Readmitter); ok && !t.cfg.HealReadmit {
		for r, ri := range t.cfg.ReviveAfter {
			if i >= ri {
				rd.Readmit(r) // idempotent
			}
		}
	}
	alive := t.cfg.Driver.Alive()
	if len(alive) == 0 {
		t.stats.Makespan = eng.Now() - t.start
		onDone(t.stats)
		return
	}
	// Data-loader redistribution: constant global batch.
	perGPU := (t.stats.GlobalBatch + len(alive) - 1) / len(alive)

	iterStart := eng.Now()
	readyAt := make(map[int]time.Duration, len(alive))
	var minReady, maxReady time.Duration
	first := true
	for _, r := range alive {
		if deadIter, dead := t.cfg.DeadAfter[r]; dead && i >= deadIter {
			if reviveIter, revives := t.cfg.ReviveAfter[r]; !revives || i < reviveIter {
				continue // crashed: never becomes ready
			}
		}
		model, err := t.cfg.Cluster.ModelOfRank(r)
		if err != nil {
			panic(fmt.Sprintf("train: rank %d: %v", r, err))
		}
		slow := t.cfg.Interference.Slowdown(eng.Now(), r)
		d := t.cfg.Workload.ComputeTime(model, perGPU, t.rng, slow)
		readyAt[r] = d
		if first || d < minReady {
			minReady = d
		}
		if d > maxReady {
			maxReady = d
		}
		first = false
	}
	t.cfg.Driver.Begin(readyAt, func(exec time.Duration) {
		now := eng.Now()
		it := IterStats{
			Spread: maxReady - minReady,
			Exec:   exec,
			Comm:   now - iterStart - minReady,
			Total:  now - iterStart,
		}
		t.stats.Iters = append(t.stats.Iters, it)
		if t.cfg.OnIteration != nil {
			t.cfg.OnIteration(i, it)
		}
		t.iterate(i+1, onDone)
	})
}

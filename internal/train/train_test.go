package train

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

func setupAdapCC(t *testing.T, c *topology.Cluster) (*backend.Env, *core.AdapCC) {
	t.Helper()
	env, err := backend.NewEnv(c, 44)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(env)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	a.Setup(func() { done = true })
	env.Engine.Run()
	if !done {
		t.Fatal("setup incomplete")
	}
	return env, a
}

func runTraining(t *testing.T, cfg Config) *Stats {
	t.Helper()
	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stats *Stats
	tr.Start(func(s *Stats) { stats = s })
	cfg.Env.Engine.Run()
	if stats == nil {
		t.Fatal("training never completed")
	}
	return stats
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestComputeTimeScaling(t *testing.T) {
	w := GPT2()
	rng := rand.New(rand.NewSource(1))
	a100 := w.ComputeTime(topology.GPUA100, 16, rng, 1)
	// Same batch on a V100 must take roughly 1/0.45 longer on average.
	var sumV, sumA float64
	for i := 0; i < 200; i++ {
		sumA += w.ComputeTime(topology.GPUA100, 16, rng, 1).Seconds()
		sumV += w.ComputeTime(topology.GPUV100, 16, rng, 1).Seconds()
	}
	ratio := sumV / sumA
	if ratio < 1.9 || ratio > 2.6 {
		t.Errorf("V100/A100 compute ratio = %.2f, want ≈1/0.45", ratio)
	}
	// Batch scaling is linear.
	big := w.ComputeTime(topology.GPUA100, 32, rand.New(rand.NewSource(1)), 1)
	if float64(big)/float64(a100) < 1.6 {
		t.Errorf("doubling batch scaled time only %.2fx", float64(big)/float64(a100))
	}
	// Slowdown multiplies.
	slow := w.ComputeTime(topology.GPUA100, 16, rand.New(rand.NewSource(1)), 1.5)
	base := w.ComputeTime(topology.GPUA100, 16, rand.New(rand.NewSource(1)), 1)
	if float64(slow)/float64(base) < 1.45 || float64(slow)/float64(base) > 1.55 {
		t.Errorf("slowdown factor not applied: %.2f", float64(slow)/float64(base))
	}
}

// TestFig3bWaitRatioShape reproduces the motivation measurement: GPT-2
// wait-time-ratio CDF medians — heterogeneous ≥ ~23%, homogeneous ≥ ~10%,
// and hetero clearly above homo.
func TestFig3bWaitRatioShape(t *testing.T) {
	run := func(c *topology.Cluster) []float64 {
		env, err := backend.NewEnv(c, 7)
		if err != nil {
			t.Fatal(err)
		}
		driver := NewWaitAllDriver(env, NCCLPlanner(env), strategy.AllReduce, GPT2().ParamBytes, env.AllRanks())
		stats := runTraining(t, Config{
			Workload: GPT2(), Env: env, Cluster: c, Driver: driver,
			Iterations: 120, BatchPerGPU: 16, Seed: 5,
		})
		return stats.WaitRatios()
	}
	homo, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		t.Fatal(err)
	}
	homoMed := median(run(homo))
	heterMed := median(run(heter))
	t.Logf("wait ratio medians: homo=%.3f heter=%.3f", homoMed, heterMed)
	if homoMed < 0.05 {
		t.Errorf("homogeneous median wait ratio %.3f too small (paper: >0.10)", homoMed)
	}
	if heterMed < 0.18 {
		t.Errorf("heterogeneous median wait ratio %.3f too small (paper: >0.23)", heterMed)
	}
	if heterMed <= homoMed {
		t.Errorf("hetero median (%.3f) should exceed homo (%.3f)", heterMed, homoMed)
	}
}

// TestAdaptiveBeatsWaitAllOnHetero reproduces the Fig. 14 shape: AdapCC's
// communication time beats NCCL's, with a bigger win in the heterogeneous
// setting.
func TestAdaptiveBeatsWaitAllOnHetero(t *testing.T) {
	commTime := func(c *topology.Cluster, adaptive bool) time.Duration {
		env, a := setupAdapCC(t, c)
		var driver Driver
		if adaptive {
			d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, VGG16().ParamBytes, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			driver = d
		} else {
			driver = NewWaitAllDriver(env, NCCLPlanner(env), strategy.AllReduce, VGG16().ParamBytes, env.AllRanks())
		}
		stats := runTraining(t, Config{
			Workload: VGG16(), Env: env, Cluster: c, Driver: driver,
			Iterations: 60, Seed: 9,
		})
		return stats.MeanComm()
	}
	heter, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		t.Fatal(err)
	}
	adapcc := commTime(heter, true)
	ncclT := commTime(heter, false)
	t.Logf("hetero VGG16 comm: adapcc=%v nccl=%v (%.2fx)", adapcc, ncclT, float64(ncclT)/float64(adapcc))
	if adapcc >= ncclT {
		t.Errorf("AdapCC comm (%v) not better than NCCL (%v) in heterogeneous training", adapcc, ncclT)
	}
}

func TestInterferenceResamplingAndBounds(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	inf := NewInterference(c, 400, rand.New(rand.NewSource(2)))
	// At t=0 the first window is sampled.
	sawVictim := false
	for now := time.Duration(0); now < time.Hour; now += 5 * time.Minute {
		for r := 0; r < 16; r++ {
			s := inf.Slowdown(now, r)
			if s < 1 || s > 1.4 {
				t.Fatalf("slowdown %v out of bounds", s)
			}
			if s > 1 {
				sawVictim = true
			}
		}
	}
	if !sawVictim {
		t.Error("no victims over an hour of 400% interference")
	}
	if inf.resamples < 10 {
		t.Errorf("resampled %d times over an hour, want ≥10", inf.resamples)
	}
	// Nil and zero-level schedules are inert.
	var none *Interference
	if none.Slowdown(0, 0) != 1 {
		t.Error("nil interference not neutral")
	}
}

// TestFig18bDirection: higher interference widens AdapCC's advantage.
func TestInterferenceHelpsAdaptive(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(level float64) float64 {
		comm := func(adaptive bool) time.Duration {
			env, a := setupAdapCC(t, c)
			inf := NewInterference(c, level, rand.New(rand.NewSource(3)))
			var driver Driver
			if adaptive {
				d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, VGG16().ParamBytes, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				driver = d
			} else {
				driver = NewWaitAllDriver(env, NCCLPlanner(env), strategy.AllReduce, VGG16().ParamBytes, env.AllRanks())
			}
			stats := runTraining(t, Config{
				Workload: VGG16(), Env: env, Cluster: c, Driver: driver,
				Iterations: 50, Seed: 13, Interference: inf,
			})
			return stats.MeanComm()
		}
		return float64(comm(false)) / float64(comm(true))
	}
	low := speedup(0)
	high := speedup(400)
	t.Logf("comm speedup over NCCL: level0=%.2fx level400=%.2fx", low, high)
	// The paper's curve rises to 1.49×; in our idealised fabric the
	// compute-side interference delay dominates the (cheap) collective,
	// so the robust reproduced claim is that AdapCC retains a clear
	// advantage at every interference level (see EXPERIMENTS.md for the
	// deviation discussion).
	if low < 1.05 {
		t.Errorf("speedup without interference %.2fx too small", low)
	}
	if high < 1.05 {
		t.Errorf("speedup at 400%% interference %.2fx too small", high)
	}
}

func TestFaultInjectionExcludesAndRedistributes(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	var faulted []int
	d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, ViT().ParamBytes, nil,
		func(f []int) { faulted = append(faulted, f...) })
	if err != nil {
		t.Fatal(err)
	}
	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: 12, Seed: 31,
		DeadAfter: map[int]int{3: 4},
	})
	if len(stats.Iters) != 12 {
		t.Fatalf("completed %d iterations, want 12 (training must continue through the fault)", len(stats.Iters))
	}
	if len(faulted) != 1 || faulted[0] != 3 {
		t.Fatalf("faulted = %v, want [3]", faulted)
	}
	if got := len(d.Alive()); got != 3 {
		t.Fatalf("alive = %d, want 3", got)
	}
}

func TestAccuracyCurves(t *testing.T) {
	sim := DefaultAccuracySim()
	iters := 4000
	full := make([]float64, iters)
	dropped := make([]float64, iters)
	rng := rand.New(rand.NewSource(8))
	for i := range full {
		full[i] = 1
		dropped[i] = 1
		if rng.Float64() < 0.4 { // straggler iterations drop ~15% of workers
			dropped[i] = 0.85
		}
	}
	adapcc := sim.Curve(full, 1)
	ncclCurve := sim.Curve(full, 2)
	async := sim.Curve(dropped, 3)

	fa, fn, fd := FinalAccuracy(adapcc, 200), FinalAccuracy(ncclCurve, 200), FinalAccuracy(async, 200)
	t.Logf("final acc: adapcc=%.3f nccl=%.3f relay-async=%.3f", fa, fn, fd)
	if d := fa - fn; d > 0.01 || d < -0.01 {
		t.Errorf("AdapCC (%.3f) and NCCL (%.3f) should converge identically", fa, fn)
	}
	if fd >= fa-0.01 {
		t.Errorf("Relay Async (%.3f) should converge below AdapCC (%.3f)", fd, fa)
	}
	// Monotone-ish rise: late accuracy above early.
	if adapcc[iters-1] < adapcc[iters/10] {
		t.Error("accuracy curve not rising")
	}
}

func TestThroughputAndStats(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewWaitAllDriver(env, NCCLPlanner(env), strategy.AllReduce, ViT().ParamBytes, env.AllRanks())
	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: 10, BatchPerGPU: 64, Seed: 2,
	})
	if stats.GlobalBatch != 256 {
		t.Errorf("global batch = %d, want 256", stats.GlobalBatch)
	}
	if stats.Throughput() <= 0 {
		t.Error("no throughput")
	}
	if stats.MeanComm() <= 0 {
		t.Error("no comm time")
	}
	for _, it := range stats.Iters {
		if it.Total < it.Comm || it.Comm < it.Exec {
			t.Fatalf("inconsistent iteration stats: %+v", it)
		}
	}
}

func TestReprofileHookInvoked(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, ViT().ParamBytes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	reprofiles := 0
	runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: 10, Seed: 2,
		ReprofileEvery: 3,
		Reprofile: func(done func()) {
			reprofiles++
			a.Reconstruct(func(time.Duration) { done() })
		},
	})
	if reprofiles != 3 { // at iterations 3, 6, 9
		t.Errorf("reprofiles = %d, want 3", reprofiles)
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := NewTrainer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestMoEWorkloadUsesAlltoAll(t *testing.T) {
	if MoE().Collective != strategy.AlltoAll {
		t.Error("MoE should dispatch tokens with AlltoAll")
	}
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewWaitAllDriver(env, MSCCLPlanner(env), strategy.AlltoAll, MoE().ParamBytes, env.AllRanks())
	stats := runTraining(t, Config{
		Workload: MoE(), Env: env, Cluster: c, Driver: d,
		Iterations: 5, Seed: 2,
	})
	if len(stats.Iters) != 5 {
		t.Fatalf("iterations = %d", len(stats.Iters))
	}
}

// TestBucketOverlapHidesCommunication exercises the DDP communication-hook
// path (paper Sec. VI-A): submitting gradient buckets to the ordered work
// queue during the backward pass hides most of the AllReduce time behind
// compute, so the post-backward tail is far smaller than the full
// sequential communication.
func TestBucketOverlapHidesCommunication(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	q := a.NewQueue()
	w := VGG16()
	backward := 120 * time.Millisecond
	sched := NewBucketSchedule(w.ParamBytes, DefaultBucketBytes, backward)
	if len(sched.Buckets) != 22 { // ceil(528/25)
		t.Fatalf("buckets = %d, want 22", len(sched.Buckets))
	}
	var sum int64
	for _, b := range sched.Buckets {
		sum += b
	}
	if sum > w.ParamBytes || sum < w.ParamBytes-128 {
		t.Fatalf("bucket bytes sum %d vs params %d", sum, w.ParamBytes)
	}

	var tail, total time.Duration
	if err := RunBucketedIteration(a, q, sched, func(tl, tt time.Duration) { tail, total = tl, tt }); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if total <= backward {
		t.Fatalf("total %v not beyond backward %v", total, backward)
	}

	// Reference: the same volume as one sequential post-backward AllReduce.
	seq, err := backend.Measure(env, a, backend.Request{
		Primitive: strategy.AllReduce, Bytes: w.ParamBytes, Root: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bucketed tail %v vs sequential allreduce %v (backward %v)", tail, seq, backward)
	if float64(tail) > 0.55*float64(seq) {
		t.Errorf("bucket overlap hid too little: tail %v vs sequential %v", tail, seq)
	}
}

func TestBucketedIterationValidation(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, a := setupAdapCC(t, c)
	if err := RunBucketedIteration(a, a.NewQueue(), BucketSchedule{}, nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestPlannersForAllBaselines(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	live := synth.NewLiveCosts(env.Fabric)
	for _, p := range []Planner{NCCLPlanner(env), MSCCLPlanner(env), BlinkPlanner(env)} {
		d, err := p.CommTime(live, strategy.AllReduce, 64<<20, env.AllRanks())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if d <= 0 {
			t.Errorf("%s returned non-positive time", p.Name())
		}
	}
	// Blink rejects AlltoAll plans.
	if _, err := BlinkPlanner(env).CommTime(live, strategy.AlltoAll, 1<<20, env.AllRanks()); err == nil {
		t.Error("Blink AlltoAll plan accepted")
	}
}

func TestReviveRejoinsWithoutRestart(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, a := setupAdapCC(t, c)
	var faulted []int
	d, err := NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, ViT().ParamBytes, nil,
		func(f []int) { faulted = append(faulted, f...) })
	if err != nil {
		t.Fatal(err)
	}
	aliveAt := make(map[int]int)
	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations: 24, Seed: 31,
		DeadAfter:   map[int]int{3: 4},
		ReviveAfter: map[int]int{3: 14},
		OnIteration: func(i int, _ IterStats) { aliveAt[i] = len(d.Alive()) },
	})
	if len(stats.Iters) != 24 {
		t.Fatalf("completed %d iterations, want 24", len(stats.Iters))
	}
	if len(faulted) != 1 || faulted[0] != 3 {
		t.Fatalf("faulted = %v, want [3]", faulted)
	}
	// Excluded while dead, back to full strength after the revive.
	if aliveAt[12] != 3 {
		t.Errorf("alive at iteration 12 = %d, want 3 (rank 3 excluded)", aliveAt[12])
	}
	if aliveAt[23] != 4 {
		t.Errorf("alive at iteration 23 = %d, want 4 (rank 3 readmitted)", aliveAt[23])
	}
	if got := len(d.Alive()); got != 4 {
		t.Fatalf("alive after revive = %d, want 4", got)
	}
}

func TestReviveWithoutDriverSupportIsIgnored(t *testing.T) {
	// A wait-all driver has no Readmitter; ReviveAfter must be harmless.
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := NewWaitAllDriver(env, NCCLPlanner(env), strategy.AllReduce, ViT().ParamBytes, env.AllRanks())
	stats := runTraining(t, Config{
		Workload: ViT(), Env: env, Cluster: c, Driver: d,
		Iterations:  5,
		Seed:        9,
		ReviveAfter: map[int]int{2: 3},
	})
	if len(stats.Iters) != 5 {
		t.Fatalf("completed %d iterations, want 5", len(stats.Iters))
	}
}

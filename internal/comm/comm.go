package comm

import (
	"fmt"

	"adapcc/internal/backend"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
)

// Default traffic classes for the three hybrid-parallel dimensions.
// Tensor-parallel collectives sit on every forward/backward critical path,
// pipeline activations gate the next stage, and data-parallel gradient
// all-reduces are bulk background traffic that can absorb delay — so at a
// shared link TP strictly overtakes PP, which strictly overtakes DP.
const (
	PriorityBulk    = 0 // data-parallel gradient traffic
	PriorityStage   = 1 // pipeline activations/gradients
	PriorityLatency = 2 // tensor-parallel collectives
)

// GroupSpec names a communicator group and its traffic class.
type GroupSpec struct {
	// Name labels the group in metrics and fabric class shares.
	Name string
	// Ranks are the member workers.
	Ranks []int
	// Priority orders the group's chunks at shared links (strictly).
	Priority int
	// Weight is the fair share among equal-priority groups (<=0 means 1).
	Weight float64
}

// Spec is a Megatron-style hybrid-parallel decomposition of the world:
// DP×TP×PP must equal the world size, with rank
//
//	rank = pp·(DP·TP) + dp·TP + tp
//
// so tensor-parallel ranks are contiguous (fastest-varying, ideally
// NVLink-adjacent), data-parallel replicas sit at stride TP, and pipeline
// stages at stride DP·TP.
type Spec struct {
	DP, TP, PP int
}

// World returns the world size the spec decomposes.
func (s Spec) World() int { return s.DP * s.TP * s.PP }

func (s Spec) validate() error {
	if s.DP < 1 || s.TP < 1 || s.PP < 1 {
		return fmt.Errorf("comm: spec %dx%dx%d has a dimension < 1", s.DP, s.TP, s.PP)
	}
	return nil
}

// Groups expands the spec into one GroupSpec per communicator: TP groups
// (one per pipeline stage per replica), DP groups (one per stage per
// shard position) and PP groups (one per replica per shard position),
// with the default class ladder TP > PP > DP. Dimensions of size 1
// produce no groups — a one-rank communicator has nothing to say on the
// wire. Callers may adjust Priority/Weight on the result before
// Manager.NewGroups.
func (s Spec) Groups() ([]GroupSpec, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rank := func(dp, tp, pp int) int { return pp*(s.DP*s.TP) + dp*s.TP + tp }
	var specs []GroupSpec
	if s.TP > 1 {
		for pp := 0; pp < s.PP; pp++ {
			for dp := 0; dp < s.DP; dp++ {
				ranks := make([]int, s.TP)
				for tp := range ranks {
					ranks[tp] = rank(dp, tp, pp)
				}
				specs = append(specs, GroupSpec{
					Name:     fmt.Sprintf("tp%d", pp*s.DP+dp),
					Ranks:    ranks,
					Priority: PriorityLatency,
					Weight:   1,
				})
			}
		}
	}
	if s.DP > 1 {
		for pp := 0; pp < s.PP; pp++ {
			for tp := 0; tp < s.TP; tp++ {
				ranks := make([]int, s.DP)
				for dp := range ranks {
					ranks[dp] = rank(dp, tp, pp)
				}
				specs = append(specs, GroupSpec{
					Name:     fmt.Sprintf("dp%d", pp*s.TP+tp),
					Ranks:    ranks,
					Priority: PriorityBulk,
					Weight:   1,
				})
			}
		}
	}
	if s.PP > 1 {
		for dp := 0; dp < s.DP; dp++ {
			for tp := 0; tp < s.TP; tp++ {
				ranks := make([]int, s.PP)
				for pp := range ranks {
					ranks[pp] = rank(dp, tp, pp)
				}
				specs = append(specs, GroupSpec{
					Name:     fmt.Sprintf("pp%d", dp*s.TP+tp),
					Ranks:    ranks,
					Priority: PriorityStage,
					Weight:   1,
				})
			}
		}
	}
	return specs, nil
}

// Manager carves one AdapCC instance into communicator groups. Groups
// share the instance's strategy cache (keyed by participant set, so equal
// shapes never solve twice) and the one simulated fabric, where each
// group's traffic class arbitrates its chunks against the others'.
type Manager struct {
	a      *core.AdapCC
	env    *backend.Env
	groups map[string]*Group
	order  []string
}

// NewManager wraps an AdapCC instance for group use.
func NewManager(a *core.AdapCC) (*Manager, error) {
	if a == nil {
		return nil, fmt.Errorf("comm: nil AdapCC instance")
	}
	return &Manager{a: a, env: a.Env(), groups: make(map[string]*Group)}, nil
}

// NewGroup registers one communicator group: it validates the member set,
// registers the group's traffic class with the fabric and returns the
// handle collectives run through.
func (m *Manager) NewGroup(spec GroupSpec) (*Group, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("comm: group needs a name")
	}
	if _, dup := m.groups[spec.Name]; dup {
		return nil, fmt.Errorf("comm: duplicate group %q", spec.Name)
	}
	if len(spec.Ranks) < 2 {
		return nil, fmt.Errorf("comm: group %q has %d ranks, need >= 2", spec.Name, len(spec.Ranks))
	}
	seen := make(map[int]bool, len(spec.Ranks))
	for _, r := range spec.Ranks {
		if _, ok := m.env.Graph.GPUByRank(r); !ok {
			return nil, fmt.Errorf("comm: group %q rank %d is not a GPU in this cluster", spec.Name, r)
		}
		if seen[r] {
			return nil, fmt.Errorf("comm: group %q lists rank %d twice", spec.Name, r)
		}
		seen[r] = true
	}
	class := m.env.Fabric.NewClass(fabric.Class{
		Name:     spec.Name,
		Priority: spec.Priority,
		Weight:   spec.Weight,
	})
	g := &Group{
		m:     m,
		name:  spec.Name,
		ranks: append([]int(nil), spec.Ranks...),
		class: class,
	}
	m.groups[spec.Name] = g
	m.order = append(m.order, spec.Name)
	return g, nil
}

// NewGroups registers every spec, failing atomically on the first bad one
// (fabric classes of the preceding specs stay registered but unused).
func (m *Manager) NewGroups(specs []GroupSpec) ([]*Group, error) {
	out := make([]*Group, 0, len(specs))
	for _, s := range specs {
		g, err := m.NewGroup(s)
		if err != nil {
			for _, reg := range out {
				delete(m.groups, reg.name)
				m.order = m.order[:len(m.order)-1]
			}
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// Group returns a registered group by name (nil if absent).
func (m *Manager) Group(name string) *Group { return m.groups[name] }

// Groups lists the registered groups in registration order.
func (m *Manager) Groups() []*Group {
	out := make([]*Group, len(m.order))
	for i, n := range m.order {
		out[i] = m.groups[n]
	}
	return out
}

// InFlight is the number of collectives currently running across all
// groups on the shared fabric.
func (m *Manager) InFlight() int {
	n := 0
	for _, g := range m.groups {
		n += g.inflight
	}
	return n
}

// Group is one communicator: a named rank subset with its own traffic
// class, running collectives through the shared AdapCC instance.
type Group struct {
	m     *Manager
	name  string
	ranks []int
	class fabric.ClassID

	inflight    int
	completed   int
	wireBytes   int64
	gInflight   *metrics.Gauge
	cCollective *metrics.Counter
	cWire       *metrics.Counter
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Ranks returns the member ranks (callers must not mutate).
func (g *Group) Ranks() []int { return g.ranks }

// Class returns the fabric traffic class the group's chunks travel in.
func (g *Group) Class() fabric.ClassID { return g.class }

// InFlight is the number of this group's collectives currently running.
func (g *Group) InFlight() int { return g.inflight }

// Completed is the number of collectives the group has finished.
func (g *Group) Completed() int { return g.completed }

// WireBytes is the total bytes the group's collectives put on the wire.
func (g *Group) WireBytes() int64 { return g.wireBytes }

// Run starts a collective on this group's ranks in this group's traffic
// class. A nil req.Ranks means the whole group; a non-nil set must be a
// subset of the group (a partial, e.g. with backend.WithRelays). Any
// further options are passed through to the unified Run entry point.
// Completion is observed by wrapping req.OnDone, so per-group accounting
// works even for callers that pass no callback.
func (g *Group) Run(req backend.Request, opts ...backend.RunOption) error {
	if req.Ranks == nil {
		req.Ranks = g.ranks
	} else if err := g.contains(req.Ranks); err != nil {
		return err
	}
	done := req.OnDone
	req.OnDone = func(r collective.Result) {
		g.inflight--
		g.completed++
		g.wireBytes += r.Stats.BytesOnWire
		if g.instruments() {
			now := g.m.env.Engine.Now()
			g.gInflight.Set(now, float64(g.inflight))
			g.cCollective.Inc(now)
			g.cWire.Add(now, float64(r.Stats.BytesOnWire))
		}
		if done != nil {
			done(r)
		}
	}
	all := make([]backend.RunOption, 0, len(opts)+1)
	all = append(all, backend.WithGroup(g.name, g.class))
	all = append(all, opts...)
	if err := g.m.a.Run(req, all...); err != nil {
		return fmt.Errorf("comm: group %q: %w", g.name, err)
	}
	g.inflight++
	if g.instruments() {
		g.gInflight.Set(g.m.env.Engine.Now(), float64(g.inflight))
	}
	return nil
}

func (g *Group) contains(ranks []int) error {
	member := make(map[int]bool, len(g.ranks))
	for _, r := range g.ranks {
		member[r] = true
	}
	for _, r := range ranks {
		if !member[r] {
			return fmt.Errorf("comm: rank %d is not in group %q %v", r, g.name, g.ranks)
		}
	}
	return nil
}

// instruments lazily resolves the group's metric instruments, so a
// registry installed after group creation still sees the group. Returns
// false (and records nothing) while no registry is installed.
func (g *Group) instruments() bool {
	reg := g.m.env.Metrics
	if reg == nil {
		return false
	}
	if g.gInflight == nil {
		g.gInflight = reg.Gauge("adapcc_comm_inflight",
			"collectives currently in flight per communicator group",
			"group", g.name)
		g.cCollective = reg.Counter("adapcc_comm_collectives_total",
			"collectives completed per communicator group",
			"group", g.name)
		g.cWire = reg.Counter("adapcc_comm_wire_bytes_total",
			"bytes put on the wire per communicator group",
			"group", g.name)
	}
	return true
}

// Package comm implements communicator groups: named collectives domains
// over rank subsets, sharing one AdapCC instance and one simulated fabric.
//
// Hybrid-parallel training (Megatron-style DP × TP × PP) runs many
// communicators at once — a tensor-parallel all-reduce inside each model
// shard, a data-parallel gradient all-reduce across shards, point-to-point
// pipeline traffic between stages. These overlap in time and contend for
// the same NICs. The NCCL answer is one communicator per group with no
// cross-communicator arbitration; AdapCC's controller (paper Sec. III) can
// do better because it owns the whole fabric view.
//
// A Manager carves a world into Groups. Each group gets
//
//   - its own rank subset and synthesized strategy — strategies are cached
//     in the shared AdapCC cache, keyed by participant set, so two groups
//     with the same shape never solve twice;
//   - its own fabric traffic class (priority + weight), which the
//     contention-aware chunk scheduler in internal/fabric uses to arbitrate
//     shared links: higher priority strictly wins, equal priorities split
//     bandwidth by weight (weighted fair queueing at chunk granularity,
//     no mid-chunk preemption);
//   - its own metrics: adapcc_comm_inflight, adapcc_comm_collectives_total
//     and adapcc_comm_wire_bytes_total, labelled by group.
//
// Spec describes the hybrid decomposition and Groups() expands it with the
// Megatron rank layout (tensor-parallel ranks contiguous, data-parallel
// ranks at stride TP, pipeline stages at stride DP·TP) and default traffic
// classes: TP latency-critical above PP above bulk DP.
//
// # Option style
//
// Constructors across this codebase take With* functional options rather
// than option structs:
//
//	a, _ := core.New(env, core.WithM(4), core.WithSkipProfiling())
//	a.Run(req, backend.WithRelays(1, 3), backend.WithFastPath())
//	a.RunResilient(req, onDone, core.WithRecovery(rec), core.WithHeal(h))
//	tr, _ := train.New(workload, env, c, driver, 30, train.WithSeed(7))
//
// The convention: a constructor or entry point takes a variadic ...Option;
// each With* option is a function mutating the package's (still exported,
// for inspection) options struct; zero options mean the documented
// defaults. Struct-typed variants (core.NewWithOptions, train.NewTrainer,
// core.RunResilientWithOptions) remain as deprecated wrappers for one
// release. See ExampleManager for the group API end to end.
package comm

package comm_test

import (
	"fmt"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/comm"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// ExampleManager carves a 4-GPU world into 2 data-parallel × 2
// tensor-parallel communicator groups and runs a latency-critical TP
// all-reduce concurrently with a bulk DP all-reduce, using the package's
// With* functional-option style end to end.
func ExampleManager() {
	c, _ := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	env, _ := backend.NewEnv(c, 1)
	a, _ := core.New(env, core.WithSkipProfiling())
	m, _ := comm.NewManager(a)

	specs, _ := comm.Spec{DP: 2, TP: 2, PP: 1}.Groups()
	groups, _ := m.NewGroups(specs)
	for _, g := range groups {
		fmt.Printf("%s: ranks %v priority %d\n", g.Name(), g.Ranks(), env.Fabric.ClassInfo(g.Class()).Priority)
	}

	const bytes = 1 << 20
	for _, name := range []string{"tp0", "dp0"} {
		g := m.Group(name)
		g.Run(backend.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
			Inputs: backend.MakeInputs(g.Ranks(), bytes),
			OnDone: func(r collective.Result) {
				fmt.Printf("%s done: %d ranks aggregated\n", g.Name(), len(r.Outputs))
			},
		})
	}
	fmt.Printf("in flight: %d\n", m.InFlight())
	env.Engine.Run()
	fmt.Printf("completed: tp0=%d dp0=%d\n", m.Group("tp0").Completed(), m.Group("dp0").Completed())

	// Output:
	// tp0: ranks [0 1] priority 2
	// tp1: ranks [2 3] priority 2
	// dp0: ranks [0 2] priority 0
	// dp1: ranks [1 3] priority 0
	// in flight: 2
	// tp0 done: 2 ranks aggregated
	// dp0 done: 2 ranks aggregated
	// completed: tp0=1 dp0=1
}

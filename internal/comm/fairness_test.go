package comm_test

import (
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/comm"
	"adapcc/internal/core"
	"adapcc/internal/payload"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// fairnessOutcome is everything one weighted-fairness run observes.
type fairnessOutcome struct {
	Heavy, Light int
	Drained      int64
}

// runFairness drives two cross-server groups that share a NIC — group
// "heavy" at weight 2, group "light" at weight 1, equal priority — with
// back-to-back broadcasts until a virtual deadline, and reports each
// group's completed-collective count. Broadcasts (not all-reduces) keep
// both groups' wire traffic in the same direction the whole time, so the
// shared server-0 egress port is the only bottleneck and the completion
// ratio isolates the weighted-fair arbitration.
func runFairness(t *testing.T, seed int64) fairnessOutcome {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(env, core.WithSkipProfiling())
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewManager(a)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0,1 live on server 0 and ranks 2,3 on server 1: both groups
	// cross the same pair of NICs, so every chunk of one contends with
	// the other at the shared links.
	heavy, err := m.NewGroup(comm.GroupSpec{Name: "heavy", Ranks: []int{0, 2}, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	light, err := m.NewGroup(comm.GroupSpec{Name: "light", Ranks: []int{1, 3}, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}

	const bytes = 32 << 20
	const deadline = 200_000_000 // 200 ms of virtual time
	chain := func(g *comm.Group, root int) {
		var launch func()
		launch = func() {
			err := g.Run(backend.Request{
				Primitive: strategy.Broadcast, Bytes: bytes, Root: root,
				Mode: payload.Phantom,
				OnDone: func(collective.Result) {
					if int64(env.Engine.Now()) < deadline {
						launch()
					}
				},
			})
			if err != nil {
				t.Fatalf("group %s: %v", g.Name(), err)
			}
		}
		launch()
	}
	// Three chains per group keep each class's traffic continuously at the
	// NICs: with a single outstanding collective, a group's serial phases
	// (aggregation kernels, α latencies) would let the other group run at
	// line rate in the gaps and wash out the weighted split.
	for i := 0; i < 3; i++ {
		chain(heavy, 0) // server-0 roots: all wire bytes flow server 0 → 1
		chain(light, 1)
	}
	env.Engine.Run()
	return fairnessOutcome{
		Heavy:   heavy.Completed(),
		Light:   light.Completed(),
		Drained: int64(env.Engine.Now()),
	}
}

// TestCrossGroupFairness: two groups sharing the NICs at weights 2:1 see
// throughput in ratio 2:1 (±15%), and the outcome is bit-identical across
// engine seeds — with profiling skipped, the whole timeline is a pure
// function of the weighted-fair arbitration.
func TestCrossGroupFairness(t *testing.T) {
	var first fairnessOutcome
	for seed := int64(1); seed <= 4; seed++ {
		out := runFairness(t, seed)
		if seed == 1 {
			first = out
			if out.Light == 0 {
				t.Fatalf("light group starved: %+v", out)
			}
			ratio := float64(out.Heavy) / float64(out.Light)
			if ratio < 1.7 || ratio > 2.3 {
				t.Errorf("throughput ratio = %.2f (heavy %d, light %d), want 2.0 +/- 15%%",
					ratio, out.Heavy, out.Light)
			}
			if out.Heavy+out.Light < 12 {
				t.Errorf("only %d collectives in %dms — too few for a stable ratio",
					out.Heavy+out.Light, first.Drained/1_000_000)
			}
			continue
		}
		if out != first {
			t.Errorf("seed %d outcome %+v differs from seed 1 %+v", seed, out, first)
		}
	}
	t.Logf("fairness: heavy %d vs light %d (ratio %.2f)",
		first.Heavy, first.Light, float64(first.Heavy)/float64(first.Light))
}

package comm_test

import (
	"fmt"
	"reflect"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/comm"
	"adapcc/internal/core"
	"adapcc/internal/metrics"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// hybridEnv builds an 8-GPU two-server environment with a manager over a
// fresh AdapCC instance (nominal costs, so timing is seed-independent).
func hybridEnv(t *testing.T, seed int64) (*backend.Env, *core.AdapCC, *comm.Manager) {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.New(env, core.WithSkipProfiling())
	if err != nil {
		t.Fatal(err)
	}
	m, err := comm.NewManager(a)
	if err != nil {
		t.Fatal(err)
	}
	return env, a, m
}

func TestSpecGroupsMegatronLayout(t *testing.T) {
	specs, err := comm.Spec{DP: 2, TP: 2, PP: 2}.Groups()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		// TP contiguous within each (dp, pp) cell.
		"tp0": {0, 1}, "tp1": {2, 3}, "tp2": {4, 5}, "tp3": {6, 7},
		// DP at stride TP within each pipeline stage.
		"dp0": {0, 2}, "dp1": {1, 3}, "dp2": {4, 6}, "dp3": {5, 7},
		// PP at stride DP·TP.
		"pp0": {0, 4}, "pp1": {1, 5}, "pp2": {2, 6}, "pp3": {3, 7},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d groups, want %d", len(specs), len(want))
	}
	prio := map[byte]int{'t': comm.PriorityLatency, 'd': comm.PriorityBulk, 'p': comm.PriorityStage}
	for _, s := range specs {
		if !reflect.DeepEqual(s.Ranks, want[s.Name]) {
			t.Errorf("group %s ranks = %v, want %v", s.Name, s.Ranks, want[s.Name])
		}
		if s.Priority != prio[s.Name[0]] {
			t.Errorf("group %s priority = %d, want %d", s.Name, s.Priority, prio[s.Name[0]])
		}
	}

	// Degenerate dimensions produce no groups.
	specs, err = comm.Spec{DP: 4, TP: 1, PP: 1}.Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "dp0" || len(specs[0].Ranks) != 4 {
		t.Fatalf("DP-only spec expanded to %+v", specs)
	}
	if _, err := (comm.Spec{DP: 0, TP: 2, PP: 1}).Groups(); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

// TestConcurrentGroups is the tentpole acceptance check: at least three
// communicator groups run collectives concurrently on one fabric, every
// group's aggregate is exact, and the per-group metrics add up.
func TestConcurrentGroups(t *testing.T) {
	env, _, m := hybridEnv(t, 3)
	reg := metrics.New()
	env.SetMetrics(reg)
	specs, err := comm.Spec{DP: 2, TP: 2, PP: 2}.Groups()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := m.NewGroups(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 12 {
		t.Fatalf("2x2x2 spec gave %d groups, want 12", len(groups))
	}

	const bytes = 1 << 18
	elems := int(bytes / 4)
	type check struct {
		g      *comm.Group
		inputs map[int][]float32
		got    collective.Result
	}
	var checks []*check
	// Launch an all-reduce on every group before the engine runs at all:
	// all twelve are in flight together on the shared fabric.
	for _, g := range groups {
		ck := &check{g: g, inputs: backend.MakeInputs(g.Ranks(), bytes)}
		checks = append(checks, ck)
		err := g.Run(backend.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
			Inputs: ck.inputs,
			OnDone: func(r collective.Result) { ck.got = r },
		})
		if err != nil {
			t.Fatalf("group %s: %v", g.Name(), err)
		}
	}
	if m.InFlight() != len(groups) {
		t.Fatalf("InFlight = %d before engine run, want %d", m.InFlight(), len(groups))
	}
	env.Engine.Run()
	if m.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", m.InFlight())
	}

	for _, ck := range checks {
		if ck.got.Outputs == nil {
			t.Fatalf("group %s never completed", ck.g.Name())
		}
		want := make([]float32, elems)
		for _, r := range ck.g.Ranks() {
			for i, v := range ck.inputs[r] {
				want[i] += v
			}
		}
		for _, r := range ck.g.Ranks() {
			o := ck.got.Outputs[r]
			if len(o) != elems {
				t.Fatalf("group %s rank %d output has %d elems, want %d",
					ck.g.Name(), r, len(o), elems)
			}
			for i := 0; i < elems; i += 509 {
				diff := o[i] - want[i]
				if diff < -1e-3 || diff > 1e-3 {
					t.Fatalf("group %s rank %d elem %d = %v, want %v",
						ck.g.Name(), r, i, o[i], want[i])
				}
			}
		}
		if ck.g.Completed() != 1 {
			t.Errorf("group %s Completed = %d, want 1", ck.g.Name(), ck.g.Completed())
		}
		if ck.g.WireBytes() != ck.got.Stats.BytesOnWire || ck.g.WireBytes() == 0 {
			t.Errorf("group %s WireBytes = %d, stats say %d",
				ck.g.Name(), ck.g.WireBytes(), ck.got.Stats.BytesOnWire)
		}
	}

	// The registry agrees with the per-group accounting.
	snap := reg.Snapshot()
	for _, ck := range checks {
		name := ck.g.Name()
		if v := findSeries(t, snap, "adapcc_comm_collectives_total", name); v != 1 {
			t.Errorf("group %s collectives_total = %v, want 1", name, v)
		}
		if v := findSeries(t, snap, "adapcc_comm_wire_bytes_total", name); v != float64(ck.g.WireBytes()) {
			t.Errorf("group %s wire_bytes_total = %v, want %d", name, v, ck.g.WireBytes())
		}
		if v := findSeries(t, snap, "adapcc_comm_inflight", name); v != 0 {
			t.Errorf("group %s inflight = %v, want 0", name, v)
		}
	}
}

// findSeries digs one group-labelled series value out of a snapshot.
func findSeries(t *testing.T, snap metrics.Snapshot, name, group string) float64 {
	t.Helper()
	for _, fam := range snap.Families {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if s.Labels["group"] == group {
				return s.Value
			}
		}
	}
	t.Fatalf("series %s{group=%s} not found", name, group)
	return 0
}

// TestSharedStrategyCache: groups with identical participant sets share
// one cache entry; a new shape adds exactly one.
func TestSharedStrategyCache(t *testing.T) {
	env, a, m := hybridEnv(t, 5)
	g1, err := m.NewGroup(comm.GroupSpec{Name: "left", Ranks: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.NewGroup(comm.GroupSpec{Name: "left-twin", Ranks: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := m.NewGroup(comm.GroupSpec{Name: "right", Ranks: []int{4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 1 << 16
	run := func(g *comm.Group) {
		t.Helper()
		if err := g.Run(backend.Request{
			Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
			Inputs: backend.MakeInputs(g.Ranks(), bytes),
		}); err != nil {
			t.Fatal(err)
		}
		env.Engine.Run()
	}
	run(g1)
	if n := a.CachedStrategies(); n != 1 {
		t.Fatalf("after first group: %d cached strategies, want 1", n)
	}
	run(g2) // identical shape — no new synthesis
	if n := a.CachedStrategies(); n != 1 {
		t.Fatalf("after twin group: %d cached strategies, want 1", n)
	}
	run(g3) // new shape
	if n := a.CachedStrategies(); n != 2 {
		t.Fatalf("after second shape: %d cached strategies, want 2", n)
	}
	// Distinct groups still ran in distinct traffic classes.
	if g1.Class() == g2.Class() || g2.Class() == g3.Class() {
		t.Fatal("groups share a traffic class")
	}
}

func TestGroupValidation(t *testing.T) {
	_, _, m := hybridEnv(t, 7)
	cases := []struct {
		name string
		spec comm.GroupSpec
	}{
		{"unnamed", comm.GroupSpec{Ranks: []int{0, 1}}},
		{"single rank", comm.GroupSpec{Name: "solo", Ranks: []int{3}}},
		{"unknown rank", comm.GroupSpec{Name: "ghost", Ranks: []int{0, 99}}},
		{"duplicate rank", comm.GroupSpec{Name: "dup", Ranks: []int{1, 1}}},
	}
	for _, c := range cases {
		if _, err := m.NewGroup(c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := m.NewGroup(comm.GroupSpec{Name: "ok", Ranks: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewGroup(comm.GroupSpec{Name: "ok", Ranks: []int{2, 3}}); err == nil {
		t.Error("duplicate group name accepted")
	}
	if m.Group("ok") == nil || m.Group("missing") != nil {
		t.Error("Group lookup broken")
	}
}

func TestGroupRunRejectsForeignRanks(t *testing.T) {
	env, _, m := hybridEnv(t, 9)
	g, err := m.NewGroup(comm.GroupSpec{Name: "pair", Ranks: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 1 << 16
	err = g.Run(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		Ranks:  []int{0, 5},
		Inputs: backend.MakeInputs([]int{0, 5}, bytes),
	})
	if err == nil {
		t.Fatal("foreign rank accepted")
	}
	// A subset of the group is a legal partial.
	inputs := backend.MakeInputs([]int{0, 1}, bytes)
	if err := g.Run(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1,
		Ranks: []int{0, 1}, Inputs: inputs,
	}); err != nil {
		t.Fatal(err)
	}
	env.Engine.Run()
	if g.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", g.Completed())
	}
}

// groupSoakOutcome summarises one multi-group soak run for replay checks.
type groupSoakOutcome struct {
	Completed string
	WireBytes string
	Drained   int64
}

// runGroupSoak drives three overlapping groups with chained collectives
// (each completion immediately launches the next) until a virtual
// deadline, with full dense-data verification on every completion.
func runGroupSoak(t *testing.T, seed int64) groupSoakOutcome {
	t.Helper()
	env, _, m := hybridEnv(t, seed)
	specs, err := comm.Spec{DP: 2, TP: 4, PP: 1}.Groups()
	if err != nil {
		t.Fatal(err)
	}
	groups, err := m.NewGroups(specs) // tp0 tp1 dp0 dp1 dp2 dp3
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 1 << 18
	const deadline = 20_000_000 // 20 ms of virtual time
	elems := int(bytes / 4)
	for _, g := range groups {
		g := g
		inputs := backend.MakeInputs(g.Ranks(), bytes)
		var launch func()
		launch = func() {
			err := g.Run(backend.Request{
				Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
				OnDone: func(r collective.Result) {
					for _, rk := range g.Ranks() {
						if len(r.Outputs[rk]) != elems {
							t.Errorf("group %s rank %d short output", g.Name(), rk)
						}
					}
					if int64(env.Engine.Now()) < deadline {
						launch()
					}
				},
			})
			if err != nil {
				t.Fatalf("group %s: %v", g.Name(), err)
			}
		}
		launch()
	}
	env.Engine.Run()
	completed, wire := "", ""
	for _, g := range groups {
		completed += fmt.Sprintf("%s:%d ", g.Name(), g.Completed())
		wire += fmt.Sprintf("%d ", g.WireBytes())
	}
	return groupSoakOutcome{Completed: completed, WireBytes: wire, Drained: int64(env.Engine.Now())}
}

// TestGroupSoak: across seeds, concurrent chained collectives from six
// overlapping groups always drain, every group makes progress, and a
// replay of the same seed is bit-identical.
func TestGroupSoak(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			first := runGroupSoak(t, seed)
			replay := runGroupSoak(t, seed)
			if first != replay {
				t.Errorf("seed %d not reproducible:\n first: %+v\nreplay: %+v", seed, first, replay)
			}
			for _, part := range []string{"tp0:0", "dp0:0"} {
				if contains(first.Completed, part+" ") {
					t.Errorf("seed %d: a group completed nothing: %s", seed, first.Completed)
				}
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

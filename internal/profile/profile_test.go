package profile

import (
	"math"
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func buildFabric(t *testing.T, c *topology.Cluster) (*sim.Engine, *fabric.Fabric, *topology.Graph) {
	t.Helper()
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	return eng, fabric.New(eng, g), g
}

func runProfiler(t *testing.T, fab *fabric.Fabric) *Report {
	t.Helper()
	var report *Report
	New(fab, Options{}).Run(func(r *Report) { report = r })
	fab.Engine().Run()
	if report == nil {
		t.Fatal("profiler never completed")
	}
	return report
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestProfilesAllNVLinkAndNetworkEdges(t *testing.T) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	report := runProfiler(t, fab)
	for _, e := range g.Edges() {
		_, profiled := report.ByEdge[e.ID]
		wantProfiled := e.Type == topology.LinkNVLink || e.Type.Network()
		if profiled != wantProfiled {
			t.Errorf("edge %v (%v): profiled=%v, want %v", e.ID, e.Type, profiled, wantProfiled)
		}
	}
}

func TestFitRecoversGroundTruth(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	report := runProfiler(t, fab)
	for eid, m := range report.ByEdge {
		e := g.Edge(eid)
		if re := relErr(m.StreamBps, e.BandwidthBps); re > 0.02 {
			t.Errorf("edge %v (%v): bandwidth %.3g, want %.3g (err %.1f%%)",
				eid, e.Type, m.StreamBps, e.BandwidthBps, re*100)
		}
		if re := relErr(m.Alpha.Seconds(), e.Alpha.Seconds()); re > 0.05 {
			t.Errorf("edge %v (%v): alpha %v, want %v", eid, e.Type, m.Alpha, e.Alpha)
		}
	}
}

func TestTCPAggregateExceedsStream(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	report := runProfiler(t, fab)
	checked := 0
	for eid, m := range report.ByEdge {
		if !g.Edge(eid).Type.Network() {
			continue
		}
		checked++
		// Single stream is capped near 20 Gbps (2.5e9 B/s).
		if re := relErr(m.StreamBps, topology.TCPPerStreamBps); re > 0.05 {
			t.Errorf("edge %v: stream bw %.3g, want ≈%.3g", eid, m.StreamBps, topology.TCPPerStreamBps)
		}
		// Four parallel streams approach 4× (pipeline ramp-up keeps the
		// estimate a bit conservative).
		if m.AggregateBps < 3*m.StreamBps {
			t.Errorf("edge %v: aggregate %.3g not ≫ stream %.3g", eid, m.AggregateBps, m.StreamBps)
		}
	}
	if checked == 0 {
		t.Fatal("no network edges profiled")
	}
}

func TestProfilerSeesLiveDegradation(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	// Degrade server 1's ingress to 40% before profiling. Pair probes
	// attribute cost symmetrically to both ports of a connection, so the
	// invariant is END-TO-END: the profiled cost of the path into server
	// 1 must match the degraded ground truth.
	fab.SetServerIngressScale(1, 0.4)
	report := runProfiler(t, fab)
	sw, ok := g.Switch()
	if !ok {
		t.Fatal("no switch")
	}
	up0, _ := g.NICOfServer(0, 0)
	down1, _ := g.NICOfServer(1, 0)
	upEdge, _ := g.EdgeBetween(up0, sw)
	downEdge, _ := g.EdgeBetween(sw, down1)
	profiledBeta := 1/report.StreamBps(g, upEdge) + 1/report.StreamBps(g, downEdge)
	trueBeta := 1/g.Edge(upEdge).BandwidthBps + 1/(g.Edge(downEdge).BandwidthBps*0.4)
	if re := relErr(profiledBeta, trueBeta); re > 0.05 {
		t.Errorf("end-to-end beta into degraded server: profiled %.3g, want ≈%.3g", profiledBeta, trueBeta)
	}
}

func TestBothNetworkDirectionsCovered(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	report := runProfiler(t, fab)
	for _, e := range g.Edges() {
		if e.Type.Network() {
			if _, ok := report.ByEdge[e.ID]; !ok {
				t.Errorf("network edge %v (%v→%v) unprofiled",
					e.ID, g.Node(e.From), g.Node(e.To))
			}
		}
	}
}

func TestNVLinkReverseMirrored(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	report := runProfiler(t, fab)
	a, _ := g.GPUByRank(0)
	b, _ := g.GPUByRank(1)
	fwd, _ := g.EdgeBetween(a, b)
	rev, _ := g.EdgeBetween(b, a)
	mf, okF := report.ByEdge[fwd]
	mr, okR := report.ByEdge[rev]
	if !okF || !okR {
		t.Fatal("NVLink direction missing from report")
	}
	if mf.StreamBps != mr.StreamBps || mf.Alpha != mr.Alpha {
		t.Errorf("mirrored NVLink measurement differs: %+v vs %+v", mf, mr)
	}
}

func TestReportFallbacks(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportTCP, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, g := buildFabric(t, c)
	empty := &Report{ByEdge: map[topology.EdgeID]Measurement{}}
	for _, e := range g.Edges() {
		if e.Type == topology.LinkPCIe {
			if got := empty.Alpha(g, e.ID); got != e.Alpha {
				t.Errorf("PCIe alpha fallback = %v, want %v", got, e.Alpha)
			}
			if got := empty.AggregateBps(g, e.ID); got != e.BandwidthBps {
				t.Errorf("PCIe aggregate fallback = %v, want %v", got, e.BandwidthBps)
			}
		}
		if e.Type == topology.LinkTCP {
			if got := empty.StreamBps(g, e.ID); got != topology.TCPPerStreamBps {
				t.Errorf("TCP stream fallback = %v, want per-stream cap", got)
			}
		}
	}
}

func TestProfilingDurationPositiveAndBounded(t *testing.T) {
	c, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, _ := buildFabric(t, c)
	report := runProfiler(t, fab)
	if report.Duration() <= 0 {
		t.Fatal("profiling took no virtual time")
	}
	// Profiling blocks training, so it must stay well under a second on
	// the testbed (the paper's reconstruction totals are tens of ms to
	// ~1 s depending on scale).
	if report.Duration() > 2*time.Second {
		t.Errorf("profiling blocked training for %v", report.Duration())
	}
}

func TestFitAlphaBetaExact(t *testing.T) {
	alpha, beta := 5e-6, 1e-9 // 5 µs, 1 GB/s
	mk := func(count, bytes float64) observation {
		return observation{count: count, bytes: bytes, secs: count*alpha + bytes*beta}
	}
	obs := []observation{mk(8, 8e6), mk(1, 8e6), mk(4, 16e6), mk(1, 16e6)}
	gotAlpha, gotBeta, err := fitAlphaBeta(obs)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(gotAlpha.Seconds(), alpha) > 1e-6 {
		t.Errorf("alpha = %v, want 5µs", gotAlpha)
	}
	if relErr(gotBeta, beta) > 1e-9 {
		t.Errorf("beta = %v, want 1e-9", gotBeta)
	}
}

func TestFitAlphaBetaDegenerate(t *testing.T) {
	if _, _, err := fitAlphaBeta(nil); err == nil {
		t.Error("empty observations accepted")
	}
	// Identical observations: singular design matrix.
	o := observation{count: 1, bytes: 100, secs: 1}
	if _, _, err := fitAlphaBeta([]observation{o, o}); err == nil {
		t.Error("singular design accepted")
	}
}

// TestNaiveScheduleMismeasures demonstrates why the paper's multi-round
// schedule matters: probing all pairs at once makes concurrent flows
// contend on shared ports, and the fitted single-stream bandwidths come
// out far below the truth.
func TestNaiveScheduleMismeasures(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, fab, g := buildFabric(t, c)
	var naive *Report
	New(fab, Options{NaiveSchedule: true}).Run(func(r *Report) { naive = r })
	fab.Engine().Run()
	if naive == nil {
		t.Fatal("naive profiling never completed")
	}
	undershoot := 0
	network := 0
	for eid, m := range naive.ByEdge {
		e := g.Edge(eid)
		if !e.Type.Network() {
			continue
		}
		network++
		if m.StreamBps < 0.8*e.BandwidthBps {
			undershoot++
		}
	}
	if network == 0 {
		t.Fatal("no network measurements")
	}
	if undershoot == 0 {
		t.Errorf("naive all-pairs probing should mismeasure contended ports (0 of %d undershot)", network)
	}
}

// Package profile implements AdapCC's Profiler (paper Sec. IV-B): it
// measures the α–β cost model of every NVLink and network link by sending
// probe transfers over the live fabric and fitting the results, using the
// paper's interference-free schedule:
//
//   - All instances profile their intra-instance GPU-GPU links first,
//     concurrently (each instance probes its own links sequentially).
//   - Then N−1 inter-instance rounds with a barrier between rounds: in
//     round i, instance n probes instance (n+i) mod N, so at any moment
//     each ingress and egress port carries exactly one probing flow.
//
// For each link the probe plan follows the paper: send a piece of size s
// n times back-to-back (measuring n·(α+β·s)) and then one batch of n·s
// (measuring α+β·n·s), for several (n,s) combinations; α and β come from a
// least-squares fit of all observations. PCIe links are not profiled —
// their movement overlaps with network transmission.
//
// Training is blocked while profiling runs, so the profiling duration is
// part of the graph-reconstruction overhead measured in Fig. 19c.
package profile

import (
	"fmt"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Measurement is the fitted α–β model of one directed edge.
type Measurement struct {
	Edge  topology.EdgeID
	Alpha time.Duration
	// StreamBps is the single-stream bandwidth (1/β).
	StreamBps float64
	// AggregateBps is the bandwidth reachable with parallel streams
	// (differs from StreamBps on per-stream-capped TCP links; equal to
	// StreamBps elsewhere).
	AggregateBps float64
}

// Report is the profiler's output, gathered on (world) rank 0 and fed to
// the synthesizer.
type Report struct {
	ByEdge map[topology.EdgeID]Measurement
	// Started and Finished bound the profiling window in virtual time.
	Started  sim.Time
	Finished sim.Time
}

// Duration returns how long profiling blocked training.
func (r *Report) Duration() time.Duration { return r.Finished - r.Started }

// Alpha returns the profiled latency of an edge, falling back to the
// graph's nominal value when the edge was not profiled (PCIe).
func (r *Report) Alpha(g *topology.Graph, eid topology.EdgeID) time.Duration {
	if m, ok := r.ByEdge[eid]; ok {
		return m.Alpha
	}
	return g.Edge(eid).Alpha
}

// StreamBps returns the profiled single-stream bandwidth of an edge with
// nominal fallback.
func (r *Report) StreamBps(g *topology.Graph, eid topology.EdgeID) float64 {
	if m, ok := r.ByEdge[eid]; ok {
		return m.StreamBps
	}
	e := g.Edge(eid)
	if e.PerStreamBps > 0 && e.PerStreamBps < e.BandwidthBps {
		return e.PerStreamBps
	}
	return e.BandwidthBps
}

// AggregateBps returns the profiled multi-stream bandwidth of an edge with
// nominal fallback.
func (r *Report) AggregateBps(g *topology.Graph, eid topology.EdgeID) float64 {
	if m, ok := r.ByEdge[eid]; ok {
		return m.AggregateBps
	}
	return g.Edge(eid).BandwidthBps
}

// Options tunes the probe plan.
type Options struct {
	// Combos lists the (count, size) pairs probed per link class. Zero
	// values select the defaults below.
	NVLinkCombos  []Combo
	NetworkCombos []Combo
	// ParallelStreams is the stream count of the aggregate-bandwidth
	// probe on network links (default 4).
	ParallelStreams int
	// NaiveSchedule replaces the paper's interference-free (n+i)%N
	// multi-round schedule with a single round probing every connection
	// at once — concurrent probes then contend on shared ports and the
	// fitted bandwidths come out wrong. Exists for the profiling-schedule
	// ablation bench.
	NaiveSchedule bool
}

// Combo is one (n, s) probe configuration.
type Combo struct {
	Count int
	Size  int64
}

func (o *Options) defaults() {
	if len(o.NVLinkCombos) == 0 {
		o.NVLinkCombos = []Combo{{Count: 8, Size: 256 << 10}, {Count: 4, Size: 1 << 20}}
	}
	if len(o.NetworkCombos) == 0 {
		o.NetworkCombos = []Combo{{Count: 8, Size: 2 << 20}, {Count: 4, Size: 8 << 20}}
	}
	if o.ParallelStreams <= 0 {
		o.ParallelStreams = 4
	}
}

// Profiler drives probe traffic over a fabric.
type Profiler struct {
	fab  *fabric.Fabric
	opts Options
}

// New returns a profiler over the fabric.
func New(fab *fabric.Fabric, opts Options) *Profiler {
	opts.defaults()
	return &Profiler{fab: fab, opts: opts}
}

// Run profiles every NVLink and network edge and calls onDone with the
// report when the last round completes. It returns immediately; all work
// happens on the fabric's simulation engine.
func (p *Profiler) Run(onDone func(*Report)) {
	eng := p.fab.Engine()
	report := &Report{
		ByEdge:  make(map[topology.EdgeID]Measurement),
		Started: eng.Now(),
	}

	intra := p.intraPlans()
	rounds := p.interRounds()

	finish := func() {
		report.Finished = eng.Now()
		onDone(report)
	}

	runRounds := func() {
		p.runRound(rounds, 0, newPortAccumulator(), report, finish)
	}

	if len(intra) == 0 {
		runRounds()
		return
	}
	barrier := sim.NewCountdown(len(intra), runRounds)
	for _, edges := range intra {
		p.probeSequence(edges, report, barrier.Done)
	}
}

// intraPlans groups one direction of every NVLink pair by server.
func (p *Profiler) intraPlans() map[int][]topology.EdgeID {
	g := p.fab.Graph()
	plans := make(map[int][]topology.EdgeID)
	for _, e := range g.Edges() {
		if e.Type != topology.LinkNVLink {
			continue
		}
		// Probe the lower-rank → higher-rank direction; the reverse
		// direction gets the same measurement installed.
		if g.Node(e.From).Rank < g.Node(e.To).Rank {
			server := g.Node(e.From).Server
			plans[server] = append(plans[server], e.ID)
		}
	}
	return plans
}

// connection is one NIC-to-NIC network path through the core switch: the
// source server's uplink (egress port) followed by the destination
// server's downlink (ingress port).
type connection struct {
	up, down topology.EdgeID
}

// interRounds builds the N−1 round schedule of NIC-to-NIC connections: in
// round i, server n probes server (n+i)%N, so each ingress and egress port
// carries exactly one probing flow at any time.
func (p *Profiler) interRounds() [][]connection {
	g := p.fab.Graph()
	sw, ok := g.Switch()
	if !ok {
		return nil
	}
	uplinks := make(map[int][]topology.EdgeID)
	downlinks := make(map[int][]topology.EdgeID)
	servers := make(map[int]bool)
	for _, e := range g.Edges() {
		if !e.Type.Network() {
			continue
		}
		if e.To == sw {
			srv := g.Node(e.From).Server
			uplinks[srv] = append(uplinks[srv], e.ID)
			servers[srv] = true
		} else if e.From == sw {
			srv := g.Node(e.To).Server
			downlinks[srv] = append(downlinks[srv], e.ID)
			servers[srv] = true
		}
	}
	n := 0
	for srv := range servers {
		if srv+1 > n {
			n = srv + 1
		}
	}
	var rounds [][]connection
	for i := 1; i < n; i++ {
		var round []connection
		for src := 0; src < n; src++ {
			dst := (src + i) % n
			for _, up := range uplinks[src] {
				for _, down := range downlinks[dst] {
					round = append(round, connection{up: up, down: down})
				}
			}
		}
		if len(round) > 0 {
			rounds = append(rounds, round)
		}
	}
	if p.opts.NaiveSchedule {
		// All pairs at once: probe flows interfere on shared ports.
		var all []connection
		for _, r := range rounds {
			all = append(all, r...)
		}
		return [][]connection{all}
	}
	return rounds
}

// runRound executes inter-instance rounds sequentially with a barrier
// between them; flows within a round run concurrently.
func (p *Profiler) runRound(rounds [][]connection, idx int, acc *portAccumulator, report *Report, onDone func()) {
	if idx >= len(rounds) {
		acc.install(report)
		onDone()
		return
	}
	round := rounds[idx]
	barrier := sim.NewCountdown(len(round), func() {
		p.runRound(rounds, idx+1, acc, report, onDone)
	})
	for _, conn := range round {
		p.probeConnection(conn, acc, barrier.Done)
	}
}

// portAccumulator collects end-to-end connection measurements and solves
// per-port values jointly: sequential-probe α and β are additive across
// the two ports (β_conn = β_up + β_down), so an iterative least-squares
// refinement attributes a degraded port's slowness to that port instead of
// smearing it over every peer; pipelined aggregate bandwidth is the MIN of
// the two port rates, so each port's aggregate is the max observed across
// its connections.
type portAccumulator struct {
	conns []connMeasure
}

type connMeasure struct {
	up, down topology.EdgeID
	alphaSec float64
	beta     float64 // seconds per byte, end to end
	aggBps   float64
}

func newPortAccumulator() *portAccumulator { return &portAccumulator{} }

func (a *portAccumulator) add(conn connection, alpha time.Duration, beta, agg float64) {
	a.conns = append(a.conns, connMeasure{
		up: conn.up, down: conn.down,
		alphaSec: alpha.Seconds(), beta: beta, aggBps: agg,
	})
}

// solveAdditive attributes an additive end-to-end quantity to ports by
// alternating averages, starting from the symmetric split.
func (a *portAccumulator) solveAdditive(value func(connMeasure) float64) map[topology.EdgeID]float64 {
	est := make(map[topology.EdgeID]float64)
	for _, cm := range a.conns {
		v := value(cm) / 2
		est[cm.up] += 0
		est[cm.down] += 0
		if est[cm.up] == 0 {
			est[cm.up] = v
		}
		if est[cm.down] == 0 {
			est[cm.down] = v
		}
	}
	for iter := 0; iter < 12; iter++ {
		sums := make(map[topology.EdgeID]float64, len(est))
		counts := make(map[topology.EdgeID]int, len(est))
		for _, cm := range a.conns {
			v := value(cm)
			sums[cm.up] += v - est[cm.down]
			counts[cm.up]++
			sums[cm.down] += v - est[cm.up]
			counts[cm.down]++
		}
		for eid := range est {
			if counts[eid] > 0 {
				next := sums[eid] / float64(counts[eid])
				if next < 0 {
					next = 0
				}
				est[eid] = next
			}
		}
	}
	return est
}

func (a *portAccumulator) install(report *Report) {
	if len(a.conns) == 0 {
		return
	}
	alphas := a.solveAdditive(func(cm connMeasure) float64 { return cm.alphaSec })
	betas := a.solveAdditive(func(cm connMeasure) float64 { return cm.beta })
	aggs := make(map[topology.EdgeID]float64)
	for _, cm := range a.conns {
		if cm.aggBps > aggs[cm.up] {
			aggs[cm.up] = cm.aggBps
		}
		if cm.aggBps > aggs[cm.down] {
			aggs[cm.down] = cm.aggBps
		}
	}
	for eid, beta := range betas {
		m := Measurement{
			Edge:  eid,
			Alpha: time.Duration(alphas[eid] * float64(time.Second)),
		}
		if beta > 1e-15 {
			m.StreamBps = 1 / beta
		}
		m.AggregateBps = aggs[eid]
		if m.AggregateBps < m.StreamBps {
			m.AggregateBps = m.StreamBps
		}
		report.ByEdge[eid] = m
	}
}

// probeConnection runs the probe plan end-to-end over the two-hop
// connection and attributes the fit symmetrically to both ports (routes
// always traverse an uplink then a downlink, so the attributed pair
// reproduces the measured end-to-end cost exactly).
func (p *Profiler) probeConnection(conn connection, acc *portAccumulator, onDone func()) {
	g := p.fab.Graph()
	edges := []topology.EdgeID{conn.up, conn.down}
	combos := p.opts.NetworkCombos

	var obs []observation
	var runCombo func(i int)
	runCombo = func(i int) {
		if i >= len(combos) {
			alpha, beta, err := fitAlphaBeta(obs)
			if err != nil {
				// Degenerate fit: fall back to nominal values.
				up := g.Edge(conn.up)
				alpha, beta = 2*up.Alpha, 2*up.Beta()
			}
			p.probePathAggregate(edges, func(aggBps float64) {
				acc.add(conn, alpha, beta, aggBps)
				onDone()
			})
			return
		}
		c := combos[i]
		start := p.fab.Engine().Now()
		p.sendPathSequential(edges, c.Count, c.Size, func() {
			obs = append(obs, observation{
				count: float64(c.Count),
				bytes: float64(c.Count) * float64(c.Size),
				secs:  (p.fab.Engine().Now() - start).Seconds(),
			})
			batchStart := p.fab.Engine().Now()
			p.sendPath(edges, int64(c.Count)*c.Size, func() {
				obs = append(obs, observation{
					count: 1,
					bytes: float64(c.Count) * float64(c.Size),
					secs:  (p.fab.Engine().Now() - batchStart).Seconds(),
				})
				runCombo(i + 1)
			})
		})
	}
	runCombo(0)
}

// sendPath moves one message over consecutive edges (store-and-forward).
func (p *Profiler) sendPath(edges []topology.EdgeID, size int64, onDone func()) {
	if len(edges) == 0 {
		onDone()
		return
	}
	p.fab.Send(edges[0], size, nil, func(any) {
		p.sendPath(edges[1:], size, onDone)
	})
}

// sendPathSequential sends size bytes n times end-to-end, each message
// starting after the previous delivery.
func (p *Profiler) sendPathSequential(edges []topology.EdgeID, n int, size int64, onDone func()) {
	if n <= 0 {
		onDone()
		return
	}
	p.sendPath(edges, size, func() {
		p.sendPathSequential(edges, n-1, size, onDone)
	})
}

// probePathAggregate measures the connection's multi-stream bandwidth:
// ParallelStreams pipelined chunked streams run concurrently; pipelining
// across the two hops makes the end-to-end rate approach the port rate.
func (p *Profiler) probePathAggregate(edges []topology.EdgeID, onDone func(float64)) {
	streams := p.opts.ParallelStreams
	const (
		chunk   = int64(1 << 20)
		nChunks = 8
	)
	start := p.fab.Engine().Now()
	barrier := sim.NewCountdown(streams, func() {
		elapsed := (p.fab.Engine().Now() - start).Seconds()
		if elapsed <= 0 {
			onDone(0)
			return
		}
		onDone(float64(streams) * float64(chunk) * nChunks / elapsed)
	})
	for i := 0; i < streams; i++ {
		sid := p.fab.NewStreamID()
		p.pipelinePath(edges, sid, chunk, nChunks, func() { barrier.Done() })
	}
}

// pipelinePath streams nChunks chunks over the edges, posting chunk c+1
// when chunk c finishes its first hop.
func (p *Profiler) pipelinePath(edges []topology.EdgeID, sid fabric.StreamID, chunk int64, nChunks int, onDone func()) {
	remaining := nChunks
	barrier := sim.NewCountdown(nChunks, onDone)
	var postNext func()
	forward := func(rest []topology.EdgeID) {
		var step func(r []topology.EdgeID)
		step = func(r []topology.EdgeID) {
			if len(r) == 0 {
				barrier.Done()
				return
			}
			p.fab.SendStream(r[0], sid, chunk, nil, func(any) { step(r[1:]) })
		}
		step(rest)
	}
	postNext = func() {
		if remaining == 0 {
			return
		}
		remaining--
		p.fab.SendStream(edges[0], sid, chunk, nil, func(any) {
			forward(edges[1:])
			postNext()
		})
	}
	postNext()
}

// probeSequence probes edges one after another (intra-server sequences).
func (p *Profiler) probeSequence(edges []topology.EdgeID, report *Report, onDone func()) {
	if len(edges) == 0 {
		onDone()
		return
	}
	p.probeEdge(edges[0], report, func() {
		p.probeSequence(edges[1:], report, onDone)
	})
}

// observation is one timed probe pattern: T ≈ count·α + bytes·β.
type observation struct {
	count float64
	bytes float64
	secs  float64
}

// ProbeEdges runs the per-edge probe plan over the given directed edges
// sequentially and hands the fitted measurements to onDone — the reduced
// re-profiling pass the health monitor runs on freshly healed hardware.
// Quarantined edges are probed alone, so the interference-free multi-round
// schedule is unnecessary; combos come from the edge's class (NVLink vs
// network), and unlike a full profiling run nothing is mirrored onto
// reverse edges — callers name each direction they want measured. Work
// happens on the fabric's engine; ProbeEdges returns immediately.
func (p *Profiler) ProbeEdges(edges []topology.EdgeID, onDone func([]Measurement)) {
	report := &Report{ByEdge: make(map[topology.EdgeID]Measurement, len(edges))}
	var next func(i int)
	next = func(i int) {
		if i >= len(edges) {
			out := make([]Measurement, 0, len(edges))
			for _, eid := range edges {
				if m, ok := report.ByEdge[eid]; ok {
					out = append(out, m)
				}
			}
			onDone(out)
			return
		}
		p.probeEdgeCombos(edges[i], p.combosFor(edges[i]), false, report, func() {
			next(i + 1)
		})
	}
	next(0)
}

// combosFor picks the probe plan for an edge by link class.
func (p *Profiler) combosFor(eid topology.EdgeID) []Combo {
	if p.fab.Graph().Edge(eid).Type.Network() {
		return p.opts.NetworkCombos
	}
	return p.opts.NVLinkCombos
}

// probeEdge runs the full probe plan on one edge and records the fit. For
// NVLink edges the measurement is mirrored onto the reverse direction.
func (p *Profiler) probeEdge(eid topology.EdgeID, report *Report, onDone func()) {
	p.probeEdgeCombos(eid, p.opts.NVLinkCombos, true, report, onDone)
}

// probeEdgeCombos runs the (n,s) probe plan on one edge and records the
// fit, optionally mirroring it onto the reverse direction.
func (p *Profiler) probeEdgeCombos(eid topology.EdgeID, combos []Combo, mirror bool, report *Report, onDone func()) {
	g := p.fab.Graph()
	edge := g.Edge(eid)

	var obs []observation
	finishFit := func() {
		alpha, beta, err := fitAlphaBeta(obs)
		if err != nil {
			// Degenerate fit: fall back to nominal values rather
			// than aborting profiling mid-training.
			alpha = edge.Alpha
			beta = edge.Beta()
		}
		m := Measurement{Edge: eid, Alpha: alpha}
		if beta > 0 {
			m.StreamBps = 1 / beta
		} else {
			m.StreamBps = edge.BandwidthBps
		}
		m.AggregateBps = m.StreamBps
		report.ByEdge[eid] = m
		if mirror {
			if rev, ok := g.EdgeBetween(edge.To, edge.From); ok {
				rm := m
				rm.Edge = rev
				report.ByEdge[rev] = rm
			}
		}
		onDone()
	}

	// Run each combo's sequential pattern then batch pattern, chaining.
	var runCombo func(i int)
	runCombo = func(i int) {
		if i >= len(combos) {
			finishFit()
			return
		}
		c := combos[i]
		start := p.fab.Engine().Now()
		p.sendSequential(eid, c.Count, c.Size, func() {
			obs = append(obs, observation{
				count: float64(c.Count),
				bytes: float64(c.Count) * float64(c.Size),
				secs:  (p.fab.Engine().Now() - start).Seconds(),
			})
			batchStart := p.fab.Engine().Now()
			p.fab.Send(eid, int64(c.Count)*c.Size, nil, func(any) {
				obs = append(obs, observation{
					count: 1,
					bytes: float64(c.Count) * float64(c.Size),
					secs:  (p.fab.Engine().Now() - batchStart).Seconds(),
				})
				runCombo(i + 1)
			})
		})
	}
	runCombo(0)
}

// sendSequential sends size bytes n times, each send starting after the
// previous delivery (so each send pays the full α).
func (p *Profiler) sendSequential(eid topology.EdgeID, n int, size int64, onDone func()) {
	if n <= 0 {
		onDone()
		return
	}
	p.fab.Send(eid, size, nil, func(any) {
		p.sendSequential(eid, n-1, size, onDone)
	})
}

// fitAlphaBeta solves the least-squares system T_k = count_k·α + bytes_k·β.
func fitAlphaBeta(obs []observation) (time.Duration, float64, error) {
	if len(obs) < 2 {
		return 0, 0, fmt.Errorf("profile: %d observations, need >= 2", len(obs))
	}
	var scc, scb, sbb, sct, sbt float64
	for _, o := range obs {
		scc += o.count * o.count
		scb += o.count * o.bytes
		sbb += o.bytes * o.bytes
		sct += o.count * o.secs
		sbt += o.bytes * o.secs
	}
	det := scc*sbb - scb*scb
	if det == 0 {
		return 0, 0, fmt.Errorf("profile: singular probe design")
	}
	alphaSec := (sct*sbb - sbt*scb) / det
	beta := (scc*sbt - scb*sct) / det
	if alphaSec < 0 {
		alphaSec = 0
	}
	if beta <= 0 {
		return 0, 0, fmt.Errorf("profile: fitted non-positive beta %v", beta)
	}
	return time.Duration(alphaSec * float64(time.Second)), beta, nil
}

package profile

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"adapcc/internal/topology"
)

// edgeJSON is the wire form of one profiled edge.
type edgeJSON struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Type         string  `json:"type"`
	AlphaNs      int64   `json:"alpha_ns"`
	StreamBps    float64 `json:"stream_bps"`
	AggregateBps float64 `json:"aggregate_bps"`
}

// reportJSON is the wire form of a whole report.
type reportJSON struct {
	DurationMs float64    `json:"profiling_ms"`
	Edges      []edgeJSON `json:"edges"`
}

// WriteJSON dumps the profiled α–β values in a machine-readable form, one
// record per measured directed edge, ordered by edge id — the measurements
// a monitoring pipeline would scrape to watch link health over time.
func (r *Report) WriteJSON(g *topology.Graph, w io.Writer) error {
	ids := make([]int, 0, len(r.ByEdge))
	for eid := range r.ByEdge {
		ids = append(ids, int(eid))
	}
	sort.Ints(ids)
	out := reportJSON{DurationMs: r.Duration().Seconds() * 1e3}
	for _, id := range ids {
		m := r.ByEdge[topology.EdgeID(id)]
		e := g.Edge(m.Edge)
		out.Edges = append(out.Edges, edgeJSON{
			From:         g.Node(e.From).String(),
			To:           g.Node(e.To).String(),
			Type:         e.Type.String(),
			AlphaNs:      int64(m.Alpha / time.Nanosecond),
			StreamBps:    m.StreamBps,
			AggregateBps: m.AggregateBps,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package metrics

import (
	"adapcc/internal/sim"
)

// Engine-level instrumentation for the partitioned event engine: the
// coordinator (sim.Parallel) keeps per-domain counters itself — it cannot
// depend on this package — and callers publish a snapshot of them here
// after (or between) runs. All series are stamped with the coordinator's
// final virtual time, so they align with the rest of the virtual-time
// metrics plane.

// RecordEngine publishes per-domain engine statistics and the run-level
// speedup gauge into the registry:
//
//	adapcc_engine_events_fired_total{domain}  events executed per domain
//	adapcc_engine_lookahead_stalls_total{domain}  windows a domain idled
//	adapcc_engine_queue_depth_max{domain}  high-water pending-event count
//	adapcc_engine_windows_total  lookahead windows the coordinator ran
//	adapcc_engine_speedup  busy-wall / total-wall parallelism estimate
//
// Counters are cumulative across calls: RecordEngine adds the delta since
// the previous snapshot of the same Parallel, so calling it once per Run
// keeps Prometheus semantics. A nil registry is a no-op, like every other
// collector in this package.
func RecordEngine(r *Registry, par *sim.Parallel, prev []sim.DomainStats) []sim.DomainStats {
	stats := par.Stats()
	if r == nil {
		return stats
	}
	now := par.Now()
	for i, s := range stats {
		var base sim.DomainStats
		if i < len(prev) {
			base = prev[i]
		}
		r.Counter("adapcc_engine_events_fired_total",
			"Events executed per simulation domain.", "domain", s.Name).
			Add(now, float64(s.Fired-base.Fired))
		r.Counter("adapcc_engine_lookahead_stalls_total",
			"Windows in which a domain had no event within the lookahead horizon.", "domain", s.Name).
			Add(now, float64(s.Stalls-base.Stalls))
		r.Gauge("adapcc_engine_queue_depth_max",
			"Largest pending-event count observed at a window barrier.", "domain", s.Name).
			Set(now, float64(s.MaxQueueDepth))
	}
	r.Gauge("adapcc_engine_windows_total",
		"Lookahead windows the partitioned coordinator has executed.").
		Set(now, float64(par.Windows()))
	r.Gauge("adapcc_engine_speedup",
		"Wall-clock parallelism estimate: summed per-domain busy time over coordinator wall time.").
		Set(now, par.SpeedupEstimate())
	return stats
}

// Package metrics is the quantitative observability layer of the
// simulator: a virtual-time-aware registry of counters, gauges and
// histograms that the fabric, device, collective, core and chaos layers
// record into. Where internal/trace answers "what happened, when" for a
// human in chrome://tracing, this package answers "how much, how fast" for
// a controller or operator: every sample is stamped with the virtual clock
// (sim.Time) at which it was recorded, and the whole registry exports in
// Prometheus text format and as JSON.
//
// Like the tracer, the registry is inert when unset: a nil *Registry
// returns nil instruments, and every method on a nil instrument is a
// no-op, so instrumentation sites need exactly one pointer comparison and
// no guard logic. Components pre-resolve their instruments once (at
// SetMetrics time), so the per-event hot paths never touch the registry's
// name tables.
//
// All methods assume the single-threaded simulation loop: the registry is
// not safe for concurrent use.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adapcc/internal/sim"
)

// Kind classifies an instrument family.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing sum.
	KindCounter Kind = iota
	// KindGauge is a last-written value.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String names the kind as the Prometheus TYPE line spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DurationBuckets are the default histogram bounds for virtual durations in
// seconds: 1 µs to ~67 s in powers of four, a range that spans kernel
// launches (microseconds) through faulted-collective recoveries (seconds).
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16, 64,
}

// DepthBuckets are the default histogram bounds for queue depths and other
// small cardinalities.
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// Registry holds instrument families in registration order. The zero value
// is not usable; construct with New. A nil registry hands out nil
// instruments, which record nothing.
type Registry struct {
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed kind across all label sets.
type family struct {
	name, help string
	kind       Kind
	buckets    []float64 // histogram upper bounds, ascending
	series     []*series
	byKey      map[string]*series
}

// series is one labelled time series of a family.
type series struct {
	labels []string // alternating name, value — registration order
	key    string

	val    float64  // counter / gauge
	counts []uint64 // histogram per-bucket (non-cumulative)
	sum    float64
	count  uint64

	at  sim.Time // virtual time of the last record
	set bool
}

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\x00")
}

func (r *Registry) upsert(kind Kind, name, help string, buckets []float64, labels []string) (*family, *series) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %v", name, labels))
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	key := labelKey(labels)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]string(nil), labels...), key: key}
		if kind == KindHistogram {
			s.counts = make([]uint64, len(f.buckets)+1) // +1: overflow bucket
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return f, s
}

// Counter registers (or finds) the counter series with the given name and
// alternating label name/value pairs. Nil registries return nil, which
// records nothing.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	_, s := r.upsert(KindCounter, name, help, nil, labels)
	return &Counter{s: s}
}

// Gauge registers (or finds) the gauge series with the given name and
// labels. Nil registries return nil.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	_, s := r.upsert(KindGauge, name, help, nil, labels)
	return &Gauge{s: s}
}

// Histogram registers (or finds) the histogram series with the given name,
// ascending bucket upper bounds and labels. All series of one family share
// the first registration's buckets. Nil registries return nil.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s: buckets not ascending: %v", name, buckets))
		}
	}
	f, s := r.upsert(KindHistogram, name, help, buckets, labels)
	return &Histogram{s: s, bounds: f.buckets}
}

// Counter is a monotonically non-decreasing sum. Nil counters record
// nothing.
type Counter struct{ s *series }

// Add increases the counter by v (negative v is ignored) at virtual time at.
func (c *Counter) Add(at sim.Time, v float64) {
	if c == nil || v < 0 {
		return
	}
	c.s.val += v
	c.s.at = at
	c.s.set = true
}

// Inc increases the counter by one at virtual time at.
func (c *Counter) Inc(at sim.Time) { c.Add(at, 1) }

// Value returns the accumulated sum (zero for nil counters).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.s.val
}

// Gauge is a last-written value. Nil gauges record nothing.
type Gauge struct{ s *series }

// Set writes the gauge at virtual time at.
func (g *Gauge) Set(at sim.Time, v float64) {
	if g == nil {
		return
	}
	g.s.val = v
	g.s.at = at
	g.s.set = true
}

// Value returns the last-written value (zero for nil gauges).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.s.val
}

// Histogram is a bucketed distribution. Nil histograms record nothing.
type Histogram struct {
	s      *series
	bounds []float64 // alias of the family's upper bounds
}

// Observe records v at virtual time at.
func (h *Histogram) Observe(at sim.Time, v float64) {
	if h == nil {
		return
	}
	s := h.s
	i := sort.SearchFloat64s(h.bounds, v) // first bucket with bound >= v
	s.counts[i]++
	s.sum += v
	s.count++
	s.at = at
	s.set = true
}

// ObserveDuration records a virtual duration in seconds at virtual time at.
func (h *Histogram) ObserveDuration(at sim.Time, d time.Duration) {
	h.Observe(at, d.Seconds())
}

// Count returns the number of observations (zero for nil histograms).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.s.count
}

// Sum returns the sum of observations (zero for nil histograms).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.s.sum
}

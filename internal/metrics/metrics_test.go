package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", DurationBuckets)
	c.Inc(time.Millisecond)
	c.Add(time.Millisecond, 5)
	g.Set(time.Millisecond, 3)
	h.Observe(time.Millisecond, 0.5)
	h.ObserveDuration(time.Millisecond, time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments recorded something")
	}
	if n := len(r.Snapshot().Families); n != 0 {
		t.Errorf("nil registry snapshot has %d families", n)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	c.Add(0, 2)
	c.Add(time.Second, -5) // ignored: counters never decrease
	c.Inc(2 * time.Second)
	if c.Value() != 3 {
		t.Errorf("counter = %v, want 3", c.Value())
	}
	// Re-registering the same (name, labels) returns the same series.
	if v := r.Counter("x_total", "").Value(); v != 3 {
		t.Errorf("re-registered counter = %v, want 3", v)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(time.Second, v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	snap := r.Snapshot()
	f, ok := snap.Family("lat_seconds")
	if !ok || len(f.Series) != 1 {
		t.Fatalf("missing family/series: %+v", snap)
	}
	s := f.Series[0]
	wantCounts := []uint64{1, 2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	if med := s.Quantile(0.5); med < 0.001 || med > 0.01 {
		t.Errorf("p50 = %v, want within (0.001, 0.01]", med)
	}
	// The overflow bucket clamps to the highest finite bound.
	if q := s.Quantile(1); q != 1 {
		t.Errorf("p100 = %v, want 1 (highest bound)", q)
	}
	if mean := s.Mean(); math.Abs(mean-(0.0005+0.005+0.005+0.05+0.5+5)/6) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
}

// golden exercises one instrument of each kind with fixed virtual stamps.
func golden() *Registry {
	r := New()
	c := r.Counter("adapcc_link_bytes_total", "bytes fully serialised per link", "link", "0", "type", "nvlink")
	c.Add(1500*time.Microsecond, 4096)
	c.Add(2500*time.Microsecond, 4096)
	r.Counter("adapcc_link_bytes_total", "bytes fully serialised per link", "link", "1", "type", "net").
		Add(3*time.Millisecond, 65536)
	r.Gauge("adapcc_link_utilization", "share of link bandwidth granted", "link", "0").
		Set(2500*time.Microsecond, 0.75)
	h := r.Histogram("adapcc_chunk_wait_seconds", "send-to-delivery wait per chunk", []float64{0.001, 0.01})
	h.Observe(4*time.Millisecond, 0.0005)
	h.Observe(5*time.Millisecond, 0.002)
	h.Observe(6*time.Millisecond, 0.5)
	// Registered but never recorded: must be absent from both exports.
	r.Counter("adapcc_idle_total", "never recorded")
	return r
}

const goldenProm = `# HELP adapcc_link_bytes_total bytes fully serialised per link
# TYPE adapcc_link_bytes_total counter
adapcc_link_bytes_total{link="0",type="nvlink"} 8192 2
adapcc_link_bytes_total{link="1",type="net"} 65536 3
# HELP adapcc_link_utilization share of link bandwidth granted
# TYPE adapcc_link_utilization gauge
adapcc_link_utilization{link="0"} 0.75 2
# HELP adapcc_chunk_wait_seconds send-to-delivery wait per chunk
# TYPE adapcc_chunk_wait_seconds histogram
adapcc_chunk_wait_seconds_bucket{le="0.001"} 1 6
adapcc_chunk_wait_seconds_bucket{le="0.01"} 2 6
adapcc_chunk_wait_seconds_bucket{le="+Inf"} 3 6
adapcc_chunk_wait_seconds_sum 0.5025 6
adapcc_chunk_wait_seconds_count 3 6
`

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := golden().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenProm {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), goldenProm)
	}
}

func TestJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := golden().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Families []struct {
			Name   string `json:"name"`
			Kind   string `json:"kind"`
			Series []struct {
				Labels    map[string]string `json:"labels"`
				Value     float64           `json:"value"`
				Counts    []uint64          `json:"counts"`
				Sum       float64           `json:"sum"`
				Count     uint64            `json:"count"`
				VirtualMS int64             `json:"virtual_ms"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("JSON export is not valid JSON: %v", err)
	}
	if len(snap.Families) != 3 {
		t.Fatalf("JSON has %d families, want 3 (idle family omitted)", len(snap.Families))
	}
	f0 := snap.Families[0]
	if f0.Name != "adapcc_link_bytes_total" || f0.Kind != "counter" {
		t.Errorf("family 0 = %s/%s", f0.Name, f0.Kind)
	}
	if f0.Series[0].Value != 8192 || f0.Series[0].VirtualMS != 2 {
		t.Errorf("series 0 = %+v", f0.Series[0])
	}
	if f0.Series[0].Labels["type"] != "nvlink" {
		t.Errorf("labels = %v", f0.Series[0].Labels)
	}
	hist := snap.Families[2]
	if hist.Kind != "histogram" || hist.Series[0].Count != 3 || hist.Series[0].Sum != 0.5025 {
		t.Errorf("histogram snap = %+v", hist)
	}
	// Determinism: a second export is byte-identical.
	var b2 strings.Builder
	if err := golden().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("JSON export is not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Gauge("g", "", "path", `a"b\c`).Set(0, 1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c"`) {
		t.Errorf("unescaped label in %q", b.String())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds did not panic")
		}
	}()
	r := New()
	r.Counter("dual", "")
	r.Gauge("dual", "")
}

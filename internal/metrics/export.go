package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"adapcc/internal/sim"
)

// Snapshot is a point-in-time copy of a registry, in deterministic order:
// families in registration order, series sorted by label key. Exporters and
// the experiments summaries read snapshots, never the live registry.
type Snapshot struct {
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one metric family of a snapshot.
type FamilySnap struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Kind    string       `json:"kind"`
	Buckets []float64    `json:"buckets,omitempty"`
	Series  []SeriesSnap `json:"series"`
}

// SeriesSnap is one labelled series of a family. Value holds counters and
// gauges; Counts/Sum/Count hold histograms (Counts is per-bucket,
// non-cumulative, with a final overflow bucket).
type SeriesSnap struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Counts []uint64          `json:"counts,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	// VirtualMillis is the virtual time of the series' last record, in
	// milliseconds since simulation start.
	VirtualMillis int64 `json:"virtual_ms"`

	labelList []string // registration-order labels, for Prometheus export
	bounds    []float64
}

// Quantile estimates the q-th quantile (0..1) of a histogram series by
// linear interpolation within its buckets; the overflow bucket reports the
// highest finite bound. Returns 0 for non-histogram or empty series.
func (s SeriesSnap) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(s.bounds) { // overflow bucket
				if len(s.bounds) == 0 {
					return 0
				}
				return s.bounds[len(s.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.bounds[i-1]
			}
			hi := s.bounds[i]
			frac := (target - cum) / float64(c)
			if v := lo + frac*(hi-lo); v < hi {
				return v
			}
			return hi
		}
		cum = next
	}
	if len(s.bounds) == 0 {
		return 0
	}
	return s.bounds[len(s.bounds)-1]
}

// Mean returns the mean observation of a histogram series (0 when empty).
func (s SeriesSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the registry. Series that never recorded are omitted, so
// registering instruments is free in the export. Nil registries snapshot
// empty.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for _, f := range r.families {
		fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind.String()}
		if f.kind == KindHistogram {
			fs.Buckets = append([]float64(nil), f.buckets...)
		}
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
		for _, s := range ordered {
			if !s.set {
				continue
			}
			ss := SeriesSnap{
				VirtualMillis: s.at.Milliseconds(),
				labelList:     s.labels,
				bounds:        f.buckets,
			}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels)/2)
				for i := 0; i+1 < len(s.labels); i += 2 {
					ss.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			if f.kind == KindHistogram {
				ss.Counts = append([]uint64(nil), s.counts...)
				ss.Sum = s.sum
				ss.Count = s.count
			} else {
				ss.Value = s.val
			}
			fs.Series = append(fs.Series, ss)
		}
		if len(fs.Series) > 0 {
			snap.Families = append(snap.Families, fs)
		}
	}
	return snap
}

// Family returns the named family of a snapshot, or false.
func (s Snapshot) Family(name string) (FamilySnap, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnap{}, false
}

// Total sums a family's counter/gauge values (histograms sum their Sum).
func (f FamilySnap) Total() float64 {
	var t float64
	for _, s := range f.Series {
		if f.Kind == "histogram" {
			t += s.Sum
		} else {
			t += s.Value
		}
	}
	return t
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Every sample carries a timestamp equal to the *virtual* time of
// its last record, in milliseconds — scraping a finished simulation yields
// a time series positioned on the simulated clock, not the wall clock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var b strings.Builder
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case "histogram":
				var cum uint64
				for i, c := range s.Counts {
					cum += c
					le := "+Inf"
					if i < len(f.Buckets) {
						le = formatFloat(f.Buckets[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d %d\n",
						f.Name, labelString(s.labelList, "le", le), cum, s.VirtualMillis)
				}
				fmt.Fprintf(&b, "%s_sum%s %s %d\n",
					f.Name, labelString(s.labelList), formatFloat(s.Sum), s.VirtualMillis)
				fmt.Fprintf(&b, "%s_count%s %d %d\n",
					f.Name, labelString(s.labelList), s.Count, s.VirtualMillis)
			default:
				fmt.Fprintf(&b, "%s%s %s %d\n",
					f.Name, labelString(s.labelList), formatFloat(s.Value), s.VirtualMillis)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k="v",...} from alternating pairs plus optional
// extra pairs; empty when there are no labels at all.
func labelString(labels []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	emit := func(k, v string) {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
		n++
	}
	for i := 0; i+1 < len(labels); i += 2 {
		emit(labels[i], labels[i+1])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// VirtualMillisOf converts a virtual timestamp to the millisecond stamps
// the exports carry (exposed for tests and external consumers).
func VirtualMillisOf(t sim.Time) int64 { return time.Duration(t).Milliseconds() }

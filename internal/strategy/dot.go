package strategy

import (
	"fmt"
	"io"
	"sort"
)

// dotPalette colours one sub-collective each; cycles beyond its length.
var dotPalette = []string{
	"#1b9e77", "#d95f02", "#7570b3", "#e7298a",
	"#66a61e", "#e6ab02", "#a6761d", "#666666",
}

// WriteDOT renders the strategy as a Graphviz DOT digraph: participant
// ranks as nodes (sub-collective roots double-circled), one coloured edge
// per flow, labelled with its sub-collective. Intermediate routing hops are
// omitted — the plot shows the logical data movement the synthesizer chose;
// use topology.Graph.WriteDOT for the physical picture.
func (s *Strategy) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph strategy {\n  rankdir=LR;\n  label=\"%v, %d bytes, M=%d\";\n  node [fontname=\"Helvetica\", fontsize=10, shape=circle];\n  edge [fontname=\"Helvetica\", fontsize=8];\n",
		s.Primitive, s.TotalBytes, len(s.SubCollectives)); err != nil {
		return err
	}
	roots := make(map[int]bool)
	for i := range s.SubCollectives {
		if s.SubCollectives[i].Root >= 0 {
			roots[s.SubCollectives[i].Root] = true
		}
	}
	ranks := s.Participants()
	sort.Ints(ranks)
	for _, r := range ranks {
		shape := "circle"
		if roots[r] {
			shape = "doublecircle"
		}
		if _, err := fmt.Fprintf(w, "  r%d [label=\"%d\", shape=%s];\n", r, r, shape); err != nil {
			return err
		}
	}
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		color := dotPalette[i%len(dotPalette)]
		for _, f := range sc.Flows {
			if _, err := fmt.Fprintf(w, "  r%d -> r%d [label=\"s%d\", color=\"%s\"];\n",
				f.SrcRank, f.DstRank, sc.ID, color); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "}\n")
	return err
}

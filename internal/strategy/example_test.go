package strategy_test

import (
	"fmt"

	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

// ExampleParseXML round-trips a strategy through the XML form the paper's
// Controller hands to the Communicator.
func ExampleParseXML() {
	st := &strategy.Strategy{
		Primitive:  strategy.Reduce,
		TotalBytes: 2 << 20,
		SubCollectives: []strategy.SubCollective{{
			ID: 0, Root: 0, Bytes: 2 << 20, ChunkBytes: 512 << 10,
			Flows: []strategy.Flow{
				{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{1, 0}},
				{ID: 1, SrcRank: 2, DstRank: 0, Path: []topology.NodeID{2, 0}},
			},
		}},
	}
	xml, _ := st.MarshalXMLBytes()
	parsed, _ := strategy.ParseXML(xml)
	fmt.Printf("primitive: %v\n", parsed.Primitive)
	fmt.Printf("sub-collectives: %d, flows: %d, chunks: %d\n",
		len(parsed.SubCollectives),
		len(parsed.SubCollectives[0].Flows),
		parsed.SubCollectives[0].Chunks())
	fmt.Printf("participants: %v\n", parsed.Participants())
	// Output:
	// primitive: reduce
	// sub-collectives: 1, flows: 2, chunks: 4
	// participants: [0 1 2]
}

// Package strategy defines the communication-strategy intermediate
// representation that AdapCC's synthesizer emits and the Communicator
// executes (paper Sec. IV-D): a collective is split into M parallel
// sub-collectives, each with its own communication graph (a set of routed
// flows), partition size S_m, chunk size C_m and per-node aggregation flags
// a_{m,g}. Strategies serialise to XML, exactly as in the paper.
package strategy

import (
	"encoding/xml"
	"fmt"

	"adapcc/internal/topology"
)

// Primitive names a collective operation.
type Primitive int

// Collective primitives with dedicated strategies. AllGather and
// ReduceScatter are compositions (a Broadcast per GPU / a Reduce per GPU)
// assembled at the API layer, per the paper.
const (
	Reduce Primitive = iota + 1
	Broadcast
	AllReduce // synthesised as Reduce; Broadcast executes reversely
	AlltoAll
)

// String names the collective primitive as the XML encoding spells it.
func (p Primitive) String() string {
	switch p {
	case Reduce:
		return "reduce"
	case Broadcast:
		return "broadcast"
	case AllReduce:
		return "allreduce"
	case AlltoAll:
		return "alltoall"
	default:
		return fmt.Sprintf("primitive(%d)", int(p))
	}
}

// NeedsAggregation reports whether the primitive reduces data (launches
// aggregation kernels anywhere).
func (p Primitive) NeedsAggregation() bool { return p == Reduce || p == AllReduce }

// Flow is tensor data sent from one GPU toward another along an explicit
// routed path (the x^f_{i,j} variables of Eq. 1, resolved to a path).
type Flow struct {
	ID      int               `xml:"id,attr"`
	SrcRank int               `xml:"src,attr"`
	DstRank int               `xml:"dst,attr"`
	Path    []topology.NodeID `xml:"path>node"`
}

// SubCollective is one of the M parallel communication graphs, moving one
// partition of the tensor.
type SubCollective struct {
	ID int `xml:"id,attr"`
	// Bytes is the partition size S_m.
	Bytes int64 `xml:"bytes,attr"`
	// ChunkBytes is the pipelining chunk size C_m.
	ChunkBytes int64 `xml:"chunk,attr"`
	// Root is the root rank for Reduce/Broadcast/AllReduce; -1 for
	// AlltoAll.
	Root int `xml:"root,attr"`
	// Flows are the routed data movements. Aggregation control a_{m,g}
	// is encoded structurally: for reducing primitives a GPU node
	// aggregates exactly where flows terminate (each non-root rank sends
	// one flow to its parent aggregator in an in-tree), while a GPU node
	// that a flow merely passes through forwards chunks without
	// synchronisation — the paper's a_{m,g} = 0 case.
	Flows []Flow `xml:"flows>flow"`
}

// Chunks returns the number of pipelined chunks, ceil(S_m / C_m).
func (sc *SubCollective) Chunks() int {
	if sc.ChunkBytes <= 0 || sc.Bytes <= 0 {
		return 1
	}
	return int((sc.Bytes + sc.ChunkBytes - 1) / sc.ChunkBytes)
}

// Aggregator reports whether a node performs aggregation in this
// sub-collective under a reducing primitive: it is a GPU node at which at
// least one flow terminates.
func (sc *SubCollective) Aggregator(g *topology.Graph, node topology.NodeID) bool {
	if g.Node(node).Kind != topology.KindGPU {
		return false
	}
	for _, f := range sc.Flows {
		if len(f.Path) > 0 && f.Path[len(f.Path)-1] == node {
			return true
		}
	}
	return false
}

// Strategy is the full plan for one collective primitive.
type Strategy struct {
	XMLName        xml.Name        `xml:"strategy"`
	Primitive      Primitive       `xml:"primitive,attr"`
	TotalBytes     int64           `xml:"bytes,attr"`
	SubCollectives []SubCollective `xml:"subcollective"`
}

// NodeIO summarises a node's role in one sub-collective graph: its distinct
// predecessors and successors across all flows traversing it.
type NodeIO struct {
	Preds []topology.NodeID
	Succs []topology.NodeID
	// FlowsIn[p] counts flows arriving from predecessor p; FlowsOut[s]
	// counts flows departing to successor s.
	FlowsIn  map[topology.NodeID]int
	FlowsOut map[topology.NodeID]int
	// Origin reports whether a flow starts at this node.
	Origin bool
	// Terminal reports whether a flow ends at this node.
	Terminal bool
}

// NodeLinks computes the NodeIO of every node participating in the
// sub-collective.
func (sc *SubCollective) NodeLinks() map[topology.NodeID]*NodeIO {
	ios := make(map[topology.NodeID]*NodeIO)
	get := func(n topology.NodeID) *NodeIO {
		io, ok := ios[n]
		if !ok {
			io = &NodeIO{
				FlowsIn:  make(map[topology.NodeID]int),
				FlowsOut: make(map[topology.NodeID]int),
			}
			ios[n] = io
		}
		return io
	}
	for _, f := range sc.Flows {
		for i, node := range f.Path {
			io := get(node)
			if i == 0 {
				io.Origin = true
			} else {
				prev := f.Path[i-1]
				if io.FlowsIn[prev] == 0 {
					io.Preds = append(io.Preds, prev)
				}
				io.FlowsIn[prev]++
			}
			if i == len(f.Path)-1 {
				io.Terminal = true
			} else {
				next := f.Path[i+1]
				if io.FlowsOut[next] == 0 {
					io.Succs = append(io.Succs, next)
				}
				io.FlowsOut[next]++
			}
		}
	}
	return ios
}

// Validate checks the strategy against a graph: partition sizes sum to the
// total, chunk sizes are positive, and every flow is a simple path over
// existing edges from its source GPU to its destination GPU (flow
// conservation, Eq. 1).
func (s *Strategy) Validate(g *topology.Graph) error {
	if len(s.SubCollectives) == 0 {
		return fmt.Errorf("strategy: no sub-collectives")
	}
	var sum int64
	for i := range s.SubCollectives {
		sc := &s.SubCollectives[i]
		sum += sc.Bytes
		if sc.Bytes <= 0 {
			return fmt.Errorf("strategy: sub-collective %d has non-positive partition %d", sc.ID, sc.Bytes)
		}
		if sc.ChunkBytes <= 0 {
			return fmt.Errorf("strategy: sub-collective %d has non-positive chunk size %d", sc.ID, sc.ChunkBytes)
		}
		if sc.ChunkBytes > sc.Bytes {
			return fmt.Errorf("strategy: sub-collective %d chunk %d exceeds partition %d", sc.ID, sc.ChunkBytes, sc.Bytes)
		}
		if err := sc.validateFlows(g, s.Primitive); err != nil {
			return fmt.Errorf("strategy: sub-collective %d: %w", sc.ID, err)
		}
	}
	if sum != s.TotalBytes {
		return fmt.Errorf("strategy: partitions sum to %d, want total %d", sum, s.TotalBytes)
	}
	return nil
}

func (sc *SubCollective) validateFlows(g *topology.Graph, p Primitive) error {
	if len(sc.Flows) == 0 {
		return fmt.Errorf("no flows")
	}
	for _, f := range sc.Flows {
		if len(f.Path) < 2 {
			return fmt.Errorf("flow %d: path too short (%d nodes)", f.ID, len(f.Path))
		}
		src, ok := g.GPUByRank(f.SrcRank)
		if !ok {
			return fmt.Errorf("flow %d: unknown src rank %d", f.ID, f.SrcRank)
		}
		dst, ok := g.GPUByRank(f.DstRank)
		if !ok {
			return fmt.Errorf("flow %d: unknown dst rank %d", f.ID, f.DstRank)
		}
		if f.Path[0] != src {
			return fmt.Errorf("flow %d: path starts at %v, not src %v", f.ID, f.Path[0], src)
		}
		if f.Path[len(f.Path)-1] != dst {
			return fmt.Errorf("flow %d: path ends at %v, not dst %v", f.ID, f.Path[len(f.Path)-1], dst)
		}
		seen := make(map[topology.NodeID]bool, len(f.Path))
		for i, node := range f.Path {
			if seen[node] {
				return fmt.Errorf("flow %d: node %v repeated (not a simple path)", f.ID, node)
			}
			seen[node] = true
			if i == 0 {
				continue
			}
			if _, ok := g.EdgeBetween(f.Path[i-1], node); !ok {
				return fmt.Errorf("flow %d: no edge %v -> %v", f.ID, f.Path[i-1], node)
			}
		}
	}
	switch p {
	case Reduce, AllReduce:
		return sc.validateInTree(g)
	case Broadcast:
		return sc.validateOutTree(g)
	case AlltoAll:
		return sc.validatePairs()
	}
	return nil
}

// validateInTree checks the reducing-primitive structure: every non-root
// participant originates exactly one flow to its parent aggregator, and
// following parents from any rank reaches the root without cycles.
func (sc *SubCollective) validateInTree(g *topology.Graph) error {
	if _, ok := g.GPUByRank(sc.Root); !ok {
		return fmt.Errorf("unknown root rank %d", sc.Root)
	}
	parent := make(map[int]int)
	for _, f := range sc.Flows {
		if f.SrcRank == sc.Root {
			return fmt.Errorf("root rank %d originates flow %d", sc.Root, f.ID)
		}
		if _, dup := parent[f.SrcRank]; dup {
			return fmt.Errorf("rank %d originates more than one flow", f.SrcRank)
		}
		parent[f.SrcRank] = f.DstRank
	}
	for rank := range parent {
		seen := map[int]bool{}
		cur := rank
		for cur != sc.Root {
			if seen[cur] {
				return fmt.Errorf("aggregation cycle through rank %d", cur)
			}
			seen[cur] = true
			next, ok := parent[cur]
			if !ok {
				return fmt.Errorf("rank %d's data strands at rank %d (no flow to root)", rank, cur)
			}
			cur = next
		}
	}
	return nil
}

// validateOutTree checks the Broadcast structure: every non-root
// participant receives exactly one flow, and every flow's source has a
// path of flows back to the root.
func (sc *SubCollective) validateOutTree(g *topology.Graph) error {
	if _, ok := g.GPUByRank(sc.Root); !ok {
		return fmt.Errorf("unknown root rank %d", sc.Root)
	}
	source := make(map[int]int)
	for _, f := range sc.Flows {
		if f.DstRank == sc.Root {
			return fmt.Errorf("flow %d targets the broadcast root", f.ID)
		}
		if _, dup := source[f.DstRank]; dup {
			return fmt.Errorf("rank %d receives more than one flow", f.DstRank)
		}
		source[f.DstRank] = f.SrcRank
	}
	for rank := range source {
		seen := map[int]bool{}
		cur := rank
		for cur != sc.Root {
			if seen[cur] {
				return fmt.Errorf("broadcast cycle through rank %d", cur)
			}
			seen[cur] = true
			next, ok := source[cur]
			if !ok {
				return fmt.Errorf("rank %d receives from rank %d, which never receives the data", rank, cur)
			}
			cur = next
		}
	}
	return nil
}

// validatePairs checks the AlltoAll structure: exactly one flow per ordered
// pair of participant ranks.
func (sc *SubCollective) validatePairs() error {
	ranks := make(map[int]bool)
	pairs := make(map[[2]int]bool)
	for _, f := range sc.Flows {
		if f.SrcRank == f.DstRank {
			return fmt.Errorf("flow %d is a self-send (rank %d)", f.ID, f.SrcRank)
		}
		key := [2]int{f.SrcRank, f.DstRank}
		if pairs[key] {
			return fmt.Errorf("duplicate flow for pair %v", key)
		}
		pairs[key] = true
		ranks[f.SrcRank] = true
		ranks[f.DstRank] = true
	}
	for a := range ranks {
		for b := range ranks {
			if a != b && !pairs[[2]int{a, b}] {
				return fmt.Errorf("missing flow for pair (%d,%d)", a, b)
			}
		}
	}
	return nil
}

// MarshalXML serialises the strategy (the paper's Communicator parses the
// synthesizer's XML output).
func (s *Strategy) MarshalXMLBytes() ([]byte, error) {
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("strategy: marshal: %w", err)
	}
	return out, nil
}

// ParseXML deserialises a strategy.
func ParseXML(data []byte) (*Strategy, error) {
	var s Strategy
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("strategy: unmarshal: %w", err)
	}
	return &s, nil
}

// Participants returns the distinct GPU ranks appearing as flow endpoints.
func (s *Strategy) Participants() []int {
	set := make(map[int]bool)
	for _, sc := range s.SubCollectives {
		for _, f := range sc.Flows {
			set[f.SrcRank] = true
			set[f.DstRank] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	// insertion sort for determinism
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package strategy

import (
	"strings"
	"testing"
	"testing/quick"

	"adapcc/internal/topology"
)

// testGraph builds 2 servers × 2 GPUs with NVLink and RDMA, returning the
// graph plus rank→node lookups.
func testGraph(t *testing.T) (*topology.Graph, map[int]topology.NodeID, []topology.NodeID) {
	t.Helper()
	c, err := topology.NewCluster(topology.TransportRDMA,
		topology.ServerSpec{
			GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100},
			NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
		},
		topology.ServerSpec{
			GPUs: []topology.GPUModel{topology.GPUA100, topology.GPUA100},
			NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	gpus := make(map[int]topology.NodeID, 4)
	for r := 0; r < 4; r++ {
		id, ok := g.GPUByRank(r)
		if !ok {
			t.Fatalf("rank %d missing", r)
		}
		gpus[r] = id
	}
	sw, ok := g.Switch()
	if !ok {
		t.Fatal("no core switch")
	}
	// Return hop nodes in traversal order: nic0, switch, nic1.
	nics := g.NICs()
	return g, gpus, []topology.NodeID{nics[0], sw, nics[1]}
}

// hierReduce builds a valid hierarchical reduce sub-collective: rank 3 →
// rank 2 (leader of server 1), rank 1 → rank 0, rank 2 → rank 0 via NICs.
func hierReduce(gpus map[int]topology.NodeID, nics []topology.NodeID) SubCollective {
	return SubCollective{
		ID: 0, Bytes: 1 << 20, ChunkBytes: 256 << 10, Root: 0,
		Flows: []Flow{
			{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{gpus[1], gpus[0]}},
			{ID: 1, SrcRank: 3, DstRank: 2, Path: []topology.NodeID{gpus[3], gpus[2]}},
			{ID: 2, SrcRank: 2, DstRank: 0, Path: []topology.NodeID{gpus[2], nics[2], nics[1], nics[0], gpus[0]}},
		},
	}
}

func validReduce(gpus map[int]topology.NodeID, nics []topology.NodeID) *Strategy {
	return &Strategy{
		Primitive:      Reduce,
		TotalBytes:     1 << 20,
		SubCollectives: []SubCollective{hierReduce(gpus, nics)},
	}
}

func TestValidateAcceptsHierarchicalReduce(t *testing.T) {
	g, gpus, nics := testGraph(t)
	if err := validReduce(gpus, nics).Validate(g); err != nil {
		t.Fatalf("valid strategy rejected: %v", err)
	}
}

func TestValidateRejectsBadStrategies(t *testing.T) {
	g, gpus, nics := testGraph(t)
	tests := []struct {
		name    string
		mutate  func(*Strategy)
		wantSub string
	}{
		{
			name:    "no subcollectives",
			mutate:  func(s *Strategy) { s.SubCollectives = nil },
			wantSub: "no sub-collectives",
		},
		{
			name:    "partition sum mismatch",
			mutate:  func(s *Strategy) { s.TotalBytes = 42 },
			wantSub: "sum",
		},
		{
			name:    "zero chunk",
			mutate:  func(s *Strategy) { s.SubCollectives[0].ChunkBytes = 0 },
			wantSub: "chunk",
		},
		{
			name:    "chunk exceeds partition",
			mutate:  func(s *Strategy) { s.SubCollectives[0].ChunkBytes = 2 << 20 },
			wantSub: "exceeds",
		},
		{
			name: "path missing edge",
			mutate: func(s *Strategy) {
				// GPUs 1 and 2 are on different servers: no direct edge.
				s.SubCollectives[0].Flows[0].Path = []topology.NodeID{gpus[1], gpus[2], gpus[0]}
			},
			wantSub: "no edge",
		},
		{
			name: "path wrong source",
			mutate: func(s *Strategy) {
				s.SubCollectives[0].Flows[0].Path = []topology.NodeID{gpus[0], gpus[1]}
			},
			wantSub: "starts at",
		},
		{
			name: "repeated node",
			mutate: func(s *Strategy) {
				s.SubCollectives[0].Flows[0].Path = []topology.NodeID{gpus[1], gpus[0], gpus[1], gpus[0]}
			},
			wantSub: "repeated",
		},
		{
			name: "root originates flow",
			mutate: func(s *Strategy) {
				s.SubCollectives[0].Flows = append(s.SubCollectives[0].Flows,
					Flow{ID: 9, SrcRank: 0, DstRank: 1, Path: []topology.NodeID{gpus[0], gpus[1]}})
			},
			wantSub: "root",
		},
		{
			name: "duplicate origin",
			mutate: func(s *Strategy) {
				s.SubCollectives[0].Flows = append(s.SubCollectives[0].Flows,
					Flow{ID: 9, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{gpus[1], gpus[0]}})
			},
			wantSub: "more than one",
		},
		{
			name: "stranded data",
			mutate: func(s *Strategy) {
				// Remove the leader's flow to root: rank 3's data strands at 2.
				s.SubCollectives[0].Flows = s.SubCollectives[0].Flows[:2]
			},
			wantSub: "strands",
		},
		{
			name: "unknown root",
			mutate: func(s *Strategy) {
				s.SubCollectives[0].Root = 99
			},
			wantSub: "root",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validReduce(gpus, nics)
			tt.mutate(s)
			err := s.Validate(g)
			if err == nil {
				t.Fatal("invalid strategy accepted")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateBroadcastTree(t *testing.T) {
	g, gpus, nics := testGraph(t)
	s := &Strategy{
		Primitive:  Broadcast,
		TotalBytes: 4096,
		SubCollectives: []SubCollective{{
			ID: 0, Bytes: 4096, ChunkBytes: 1024, Root: 0,
			Flows: []Flow{
				{ID: 0, SrcRank: 0, DstRank: 1, Path: []topology.NodeID{gpus[0], gpus[1]}},
				{ID: 1, SrcRank: 0, DstRank: 2, Path: []topology.NodeID{gpus[0], nics[0], nics[1], nics[2], gpus[2]}},
				{ID: 2, SrcRank: 2, DstRank: 3, Path: []topology.NodeID{gpus[2], gpus[3]}},
			},
		}},
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("valid broadcast rejected: %v", err)
	}
	// A receiver fed by a rank that never receives: swap flow 2's source
	// to rank 1 and drop flow 0 so rank 1 has no data.
	s.SubCollectives[0].Flows = []Flow{
		{ID: 1, SrcRank: 0, DstRank: 2, Path: []topology.NodeID{gpus[0], nics[0], nics[1], nics[2], gpus[2]}},
		{ID: 2, SrcRank: 1, DstRank: 3, Path: []topology.NodeID{gpus[1], gpus[0]}},
	}
	// Fix path endpoints for the broken flow (1→3 has no direct edge, use 1→0).
	s.SubCollectives[0].Flows[1].DstRank = 0
	if err := s.Validate(g); err == nil {
		t.Fatal("broadcast targeting the root accepted")
	}
}

func TestValidateAlltoAllPairs(t *testing.T) {
	g, gpus, _ := testGraph(t)
	mkFlow := func(id, src, dst int) Flow {
		return Flow{ID: id, SrcRank: src, DstRank: dst, Path: []topology.NodeID{gpus[src], gpus[dst]}}
	}
	s := &Strategy{
		Primitive:  AlltoAll,
		TotalBytes: 4096,
		SubCollectives: []SubCollective{{
			ID: 0, Bytes: 4096, ChunkBytes: 1024, Root: -1,
			Flows: []Flow{mkFlow(0, 0, 1), mkFlow(1, 1, 0)},
		}},
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("valid alltoall rejected: %v", err)
	}
	s.SubCollectives[0].Flows = s.SubCollectives[0].Flows[:1]
	if err := s.Validate(g); err == nil {
		t.Fatal("incomplete pair set accepted")
	}
}

func TestNodeLinks(t *testing.T) {
	_, gpus, nics := testGraph(t)
	sc := hierReduce(gpus, nics)
	ios := sc.NodeLinks()

	root := ios[gpus[0]]
	if !root.Terminal || root.Origin {
		t.Errorf("root: terminal=%v origin=%v, want true/false", root.Terminal, root.Origin)
	}
	if len(root.Preds) != 2 { // gpus[1] and nics[0]
		t.Errorf("root preds = %v, want 2", root.Preds)
	}

	leader := ios[gpus[2]]
	if !leader.Terminal || !leader.Origin {
		t.Errorf("leader: terminal=%v origin=%v, want true/true", leader.Terminal, leader.Origin)
	}

	nic := ios[nics[0]]
	if nic.Terminal || nic.Origin {
		t.Errorf("nic should be pure pass-through, got %+v", nic)
	}
	if nic.FlowsIn[nics[1]] != 1 {
		t.Errorf("nic in-flows = %v", nic.FlowsIn)
	}
}

func TestAggregator(t *testing.T) {
	g, gpus, nics := testGraph(t)
	sc := hierReduce(gpus, nics)
	if !sc.Aggregator(g, gpus[0]) {
		t.Error("root not an aggregator")
	}
	if !sc.Aggregator(g, gpus[2]) {
		t.Error("leader not an aggregator")
	}
	if sc.Aggregator(g, gpus[1]) {
		t.Error("pure source marked aggregator")
	}
	if sc.Aggregator(g, nics[0]) {
		t.Error("NIC marked aggregator")
	}
}

func TestChunks(t *testing.T) {
	tests := []struct {
		bytes, chunk int64
		want         int
	}{
		{1024, 256, 4},
		{1000, 256, 4},
		{1024, 1024, 1},
		{1024, 2048, 1},
		{0, 256, 1},
	}
	for _, tt := range tests {
		sc := SubCollective{Bytes: tt.bytes, ChunkBytes: tt.chunk}
		if got := sc.Chunks(); got != tt.want {
			t.Errorf("Chunks(%d/%d) = %d, want %d", tt.bytes, tt.chunk, got, tt.want)
		}
	}
}

func TestParticipantsSorted(t *testing.T) {
	_, gpus, nics := testGraph(t)
	s := validReduce(gpus, nics)
	got := s.Participants()
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("participants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("participants = %v, want %v", got, want)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	g, gpus, nics := testGraph(t)
	s := validReduce(gpus, nics)
	data, err := s.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<strategy") {
		t.Fatalf("unexpected XML: %s", data)
	}
	back, err := ParseXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(g); err != nil {
		t.Fatalf("round-tripped strategy invalid: %v", err)
	}
	if back.Primitive != Reduce || back.TotalBytes != s.TotalBytes {
		t.Errorf("round trip lost header: %+v", back)
	}
	if len(back.SubCollectives) != 1 || len(back.SubCollectives[0].Flows) != 3 {
		t.Fatalf("round trip lost flows: %+v", back.SubCollectives)
	}
	f := back.SubCollectives[0].Flows[2]
	if len(f.Path) != 5 {
		t.Errorf("flow path lost: %v", f.Path)
	}
}

func TestParseXMLGarbage(t *testing.T) {
	if _, err := ParseXML([]byte("<not-a-strategy")); err == nil {
		t.Fatal("garbage XML accepted")
	}
}

func TestPrimitiveStrings(t *testing.T) {
	tests := []struct {
		p    Primitive
		want string
	}{
		{Reduce, "reduce"}, {Broadcast, "broadcast"},
		{AllReduce, "allreduce"}, {AlltoAll, "alltoall"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
	if !AllReduce.NeedsAggregation() || Broadcast.NeedsAggregation() {
		t.Error("NeedsAggregation wrong")
	}
}

// Property: any strategy that validates against the graph survives an XML
// round trip unchanged (testing/quick over random tree shapes).
func TestXMLRoundTripProperty(t *testing.T) {
	g, gpus, nics := testGraph(t)
	f := func(seedByte uint8, chunkKB uint8) bool {
		// Random in-tree over 4 ranks rooted at 0 built from the seed.
		seed := int(seedByte)
		chunk := (int64(chunkKB%64) + 1) * 1024
		s := &Strategy{Primitive: Reduce, TotalBytes: 1 << 20}
		sc := SubCollective{ID: 0, Bytes: 1 << 20, ChunkBytes: chunk, Root: 0}
		// rank1 -> 0 always; rank3 -> 2 always; rank2 -> 0 via NICs.
		sc.Flows = []Flow{
			{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{gpus[1], gpus[0]}},
			{ID: 1, SrcRank: 3, DstRank: 2, Path: []topology.NodeID{gpus[3], gpus[2]}},
			{ID: 2, SrcRank: 2, DstRank: 0, Path: []topology.NodeID{gpus[2], nics[2], nics[1], nics[0], gpus[0]}},
		}
		if seed%2 == 0 {
			// Variant: rank 3 routes via rank 2's NIC path directly to 0.
			sc.Flows[1] = Flow{ID: 1, SrcRank: 3, DstRank: 0, Path: []topology.NodeID{gpus[3], nics[2], nics[1], nics[0], gpus[0]}}
		}
		s.SubCollectives = []SubCollective{sc}
		if err := s.Validate(g); err != nil {
			return true // invalid configurations are out of scope
		}
		data, err := s.MarshalXMLBytes()
		if err != nil {
			return false
		}
		back, err := ParseXML(data)
		if err != nil {
			return false
		}
		if back.Validate(g) != nil || back.TotalBytes != s.TotalBytes {
			return false
		}
		if len(back.SubCollectives) != 1 || len(back.SubCollectives[0].Flows) != len(sc.Flows) {
			return false
		}
		for i, f := range back.SubCollectives[0].Flows {
			if len(f.Path) != len(sc.Flows[i].Path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

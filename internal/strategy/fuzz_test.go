package strategy

import (
	"testing"

	"adapcc/internal/topology"
)

// FuzzParseXML hardens the strategy parser against arbitrary input: no
// panic, and whatever parses must survive a marshal→parse round trip
// unchanged in structure. Run with `go test -fuzz=FuzzParseXML`; the seed
// corpus alone runs under plain `go test`.
func FuzzParseXML(f *testing.F) {
	good, err := (&Strategy{
		Primitive:  AllReduce,
		TotalBytes: 1 << 20,
		SubCollectives: []SubCollective{
			{ID: 0, Root: 0, Bytes: 1 << 20, ChunkBytes: 256 << 10, Flows: []Flow{
				{ID: 0, SrcRank: 1, DstRank: 0, Path: []topology.NodeID{1, 0}},
			}},
		},
	}).MarshalXMLBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("<strategy></strategy>"))
	f.Add([]byte("<strategy primitive=\"allreduce\"><sub root=\"0\"/></strategy>"))
	f.Add([]byte("not xml at all"))
	f.Add([]byte("<strategy><sub><flow src=\"-1\" dst=\"99999999999999999999\"/></sub></strategy>"))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ParseXML(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := st.MarshalXMLBytes()
		if err != nil {
			t.Fatalf("parsed strategy failed to marshal: %v", err)
		}
		again, err := ParseXML(out)
		if err != nil {
			t.Fatalf("round-tripped XML failed to parse: %v", err)
		}
		if len(again.SubCollectives) != len(st.SubCollectives) {
			t.Fatalf("round trip changed sub-collective count: %d -> %d",
				len(st.SubCollectives), len(again.SubCollectives))
		}
		for i := range st.SubCollectives {
			if len(again.SubCollectives[i].Flows) != len(st.SubCollectives[i].Flows) {
				t.Fatalf("round trip changed flow count in sub %d", i)
			}
		}
	})
}

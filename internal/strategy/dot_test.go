package strategy

import (
	"strings"
	"testing"
)

func dotStrategy() *Strategy {
	return &Strategy{
		Primitive:  AllReduce,
		TotalBytes: 1 << 20,
		SubCollectives: []SubCollective{
			{ID: 0, Root: 0, Bytes: 512 << 10, ChunkBytes: 64 << 10, Flows: []Flow{
				{ID: 0, SrcRank: 1, DstRank: 0},
				{ID: 1, SrcRank: 2, DstRank: 0},
			}},
			{ID: 1, Root: 2, Bytes: 512 << 10, ChunkBytes: 64 << 10, Flows: []Flow{
				{ID: 0, SrcRank: 0, DstRank: 2},
				{ID: 1, SrcRank: 1, DstRank: 2},
			}},
		},
	}
}

func TestStrategyWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := dotStrategy().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.HasPrefix(dot, "digraph strategy {") {
		t.Fatal("not a strategy digraph")
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Fatal("unbalanced braces")
	}
	// Both roots double-circled, the non-root plain.
	if strings.Count(dot, "doublecircle") != 2 {
		t.Errorf("want 2 doublecircle roots, got %d", strings.Count(dot, "doublecircle"))
	}
	// One edge per flow, coloured per sub-collective.
	if got := strings.Count(dot, "->"); got != 4 {
		t.Errorf("%d edges, want 4", got)
	}
	if strings.Count(dot, dotPalette[0]) != 2 || strings.Count(dot, dotPalette[1]) != 2 {
		t.Error("sub-collectives not coloured distinctly")
	}
	if !strings.Contains(dot, "allreduce") {
		t.Error("label missing the primitive")
	}
}

func TestStrategyWriteDOTPaletteCycles(t *testing.T) {
	st := &Strategy{Primitive: Reduce, TotalBytes: 4}
	for i := 0; i < len(dotPalette)+2; i++ {
		st.SubCollectives = append(st.SubCollectives, SubCollective{
			ID: i, Root: 0, Bytes: 4, ChunkBytes: 4,
			Flows: []Flow{{ID: 0, SrcRank: 1, DstRank: 0}},
		})
	}
	var sb strings.Builder
	if err := st.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), dotPalette[0]) < 2 {
		t.Error("palette did not cycle for >8 sub-collectives")
	}
}

// Package cluster provides factories for the physical testbeds used in the
// paper's evaluation (Sec. VI-B): four servers with 4×A100 GPUs, NVLink,
// PCIe 4.0 and one 100 Gbps Mellanox NIC each, plus two servers with 4×V100
// GPUs, NVLink, PCIe 3.0 and one 50 Gbps NIC each, and the GPU-count cases
// of Figs. 11–13.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"adapcc/internal/topology"
)

// A100Server returns a testbed A100 server spec with n GPUs.
func A100Server(n int) topology.ServerSpec {
	return topology.ServerSpec{
		GPUs: repeatModel(topology.GPUA100, n),
		NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(100)}},
		PCIe: topology.PCIe4,
	}
}

// V100Server returns a testbed V100 server spec with n GPUs.
func V100Server(n int) topology.ServerSpec {
	return topology.ServerSpec{
		GPUs: repeatModel(topology.GPUV100, n),
		NICs: []topology.NICSpec{{BandwidthBps: topology.Gbps(50)}},
		PCIe: topology.PCIe3,
	}
}

// FragmentedA100Server returns an A100 server where allocated GPUs have no
// direct NVLink connectivity (cloud resource-fragmentation case of
// Sec. II-A): communication falls back to PCIe through the NICs' host path.
func FragmentedA100Server(n int) topology.ServerSpec {
	s := A100Server(n)
	s.NVLinkPairs = [][2]int{} // explicitly none
	return s
}

// Testbed returns the paper's full six-server testbed: servers 0–3 are
// A100 (4 GPUs each), servers 4–5 are V100 (4 GPUs each).
func Testbed(transport topology.Transport) (*topology.Cluster, error) {
	return topology.NewCluster(transport,
		A100Server(4), A100Server(4), A100Server(4), A100Server(4),
		V100Server(4), V100Server(4))
}

// Homogeneous returns n A100 servers with gpusEach GPUs ("Homo" setting of
// Sec. VI-D uses n=4, gpusEach=4).
func Homogeneous(transport topology.Transport, n, gpusEach int) (*topology.Cluster, error) {
	servers := make([]topology.ServerSpec, n)
	for i := range servers {
		servers[i] = A100Server(gpusEach)
	}
	return topology.NewCluster(transport, servers...)
}

// Heterogeneous returns the "Heter" setting of Sec. VI-D: two A100 servers
// and two V100 servers, gpusEach GPUs per server.
func Heterogeneous(transport topology.Transport, gpusEach int) (*topology.Cluster, error) {
	return topology.NewCluster(transport,
		A100Server(gpusEach), A100Server(gpusEach),
		V100Server(gpusEach), V100Server(gpusEach))
}

// SingleGPUInstances returns n single-A100 cloud instances: every rank
// sits behind its own NIC, so all collective traffic crosses the shared
// network fabric. This is the cloud resource-fragmentation setting of
// Sec. II-A pushed to the extreme, and the one where communicator-group
// scheduling matters most — every group's traffic contends at the NICs.
func SingleGPUInstances(transport topology.Transport, n int) (*topology.Cluster, error) {
	servers := make([]topology.ServerSpec, n)
	for i := range servers {
		servers[i] = A100Server(1)
	}
	return topology.NewCluster(transport, servers...)
}

// Case describes one x-axis configuration of Figs. 11–13: the number of
// GPUs used on each A100 server and each V100 server.
type Case struct {
	Name string
	A100 []int
	V100 []int
}

// Build materialises the case as a cluster.
func (c Case) Build(transport topology.Transport) (*topology.Cluster, error) {
	var servers []topology.ServerSpec
	for _, n := range c.A100 {
		servers = append(servers, A100Server(n))
	}
	for _, n := range c.V100 {
		servers = append(servers, V100Server(n))
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("cluster: case %q selects no servers", c.Name)
	}
	return topology.NewCluster(transport, servers...)
}

// NumGPUs returns the total GPUs the case uses.
func (c Case) NumGPUs() int {
	n := 0
	for _, v := range c.A100 {
		n += v
	}
	for _, v := range c.V100 {
		n += v
	}
	return n
}

// BenchmarkCases returns the GPU-count cases used on the x-axes of
// Figs. 11–13, from small homogeneous subsets to the full heterogeneous
// testbed (the paper's rightmost case is 'A100:(4,4,4,4) V100:(4,4)').
func BenchmarkCases() []Case {
	return []Case{
		{Name: "A100:(4,4)", A100: []int{4, 4}},
		{Name: "A100:(2,2,2,2)", A100: []int{2, 2, 2, 2}},
		{Name: "A100:(4,4,4,4)", A100: []int{4, 4, 4, 4}},
		{Name: "A100:(2,2) V100:(2,2)", A100: []int{2, 2}, V100: []int{2, 2}},
		{Name: "A100:(4,4) V100:(4,4)", A100: []int{4, 4}, V100: []int{4, 4}},
		{Name: "A100:(4,4,4,4) V100:(4,4)", A100: []int{4, 4, 4, 4}, V100: []int{4, 4}},
	}
}

// ParseCase parses a case name such as "A100:(4,4) V100:(2,2)".
func ParseCase(name string) (Case, error) {
	c := Case{Name: name}
	for _, field := range strings.Fields(name) {
		model, counts, ok := strings.Cut(field, ":")
		if !ok {
			return Case{}, fmt.Errorf("cluster: malformed case field %q", field)
		}
		counts = strings.TrimSuffix(strings.TrimPrefix(counts, "("), ")")
		var parsed []int
		for _, part := range strings.Split(counts, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return Case{}, fmt.Errorf("cluster: bad GPU count %q in %q", part, field)
			}
			parsed = append(parsed, n)
		}
		switch strings.ToUpper(model) {
		case "A100":
			c.A100 = append(c.A100, parsed...)
		case "V100":
			c.V100 = append(c.V100, parsed...)
		default:
			return Case{}, fmt.Errorf("cluster: unknown GPU model %q", model)
		}
	}
	if c.NumGPUs() == 0 {
		return Case{}, fmt.Errorf("cluster: case %q selects no GPUs", name)
	}
	return c, nil
}

func repeatModel(m topology.GPUModel, n int) []topology.GPUModel {
	out := make([]topology.GPUModel, n)
	for i := range out {
		out[i] = m
	}
	return out
}

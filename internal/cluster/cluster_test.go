package cluster

import (
	"testing"

	"adapcc/internal/topology"
)

func TestTestbedMatchesPaper(t *testing.T) {
	c, err := Testbed(topology.TransportRDMA)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers) != 6 {
		t.Fatalf("servers = %d, want 6", len(c.Servers))
	}
	if c.NumGPUs() != 24 {
		t.Fatalf("GPUs = %d, want 24", c.NumGPUs())
	}
	for i := 0; i < 4; i++ {
		if c.Servers[i].GPUs[0] != topology.GPUA100 {
			t.Errorf("server %d is %v, want A100", i, c.Servers[i].GPUs[0])
		}
		if got := c.Servers[i].NICs[0].BandwidthBps; got != topology.Gbps(100) {
			t.Errorf("server %d NIC = %v, want 100 Gbps", i, got)
		}
	}
	for i := 4; i < 6; i++ {
		if c.Servers[i].GPUs[0] != topology.GPUV100 {
			t.Errorf("server %d is %v, want V100", i, c.Servers[i].GPUs[0])
		}
		if got := c.Servers[i].NICs[0].BandwidthBps; got != topology.Gbps(50) {
			t.Errorf("server %d NIC = %v, want 50 Gbps", i, got)
		}
		if c.Servers[i].PCIe != topology.PCIe3 {
			t.Errorf("server %d PCIe = %v, want Gen3", i, c.Servers[i].PCIe)
		}
	}
}

func TestHomogeneousAndHeterogeneous(t *testing.T) {
	homo, err := Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if homo.NumGPUs() != 16 {
		t.Errorf("homo GPUs = %d, want 16", homo.NumGPUs())
	}
	heter, err := Heterogeneous(topology.TransportTCP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if heter.NumGPUs() != 16 {
		t.Errorf("heter GPUs = %d, want 16", heter.NumGPUs())
	}
	if heter.Servers[0].GPUs[0] != topology.GPUA100 || heter.Servers[3].GPUs[0] != topology.GPUV100 {
		t.Error("heter server mix wrong")
	}
	if heter.Transport != topology.TransportTCP {
		t.Error("transport not propagated")
	}
}

func TestBenchmarkCasesBuild(t *testing.T) {
	for _, bc := range BenchmarkCases() {
		bc := bc
		t.Run(bc.Name, func(t *testing.T) {
			c, err := bc.Build(topology.TransportRDMA)
			if err != nil {
				t.Fatal(err)
			}
			if c.NumGPUs() != bc.NumGPUs() {
				t.Errorf("built %d GPUs, case says %d", c.NumGPUs(), bc.NumGPUs())
			}
			g, err := c.LogicalGraph()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("invalid graph: %v", err)
			}
		})
	}
}

func TestParseCase(t *testing.T) {
	tests := []struct {
		give     string
		wantA    []int
		wantV    []int
		wantGPUs int
		wantErr  bool
	}{
		{give: "A100:(4,4)", wantA: []int{4, 4}, wantGPUs: 8},
		{give: "A100:(4,4,4,4) V100:(4,4)", wantA: []int{4, 4, 4, 4}, wantV: []int{4, 4}, wantGPUs: 24},
		{give: "V100:(2)", wantV: []int{2}, wantGPUs: 2},
		{give: "A100:4,4", wantA: []int{4, 4}, wantGPUs: 8}, // parens optional
		{give: "H100:(4)", wantErr: true},
		{give: "A100", wantErr: true},
		{give: "A100:(0)", wantErr: true},
		{give: "A100:(x)", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			c, err := ParseCase(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !intsEqual(c.A100, tt.wantA) || !intsEqual(c.V100, tt.wantV) {
				t.Errorf("parsed A=%v V=%v, want A=%v V=%v", c.A100, c.V100, tt.wantA, tt.wantV)
			}
			if c.NumGPUs() != tt.wantGPUs {
				t.Errorf("NumGPUs = %d, want %d", c.NumGPUs(), tt.wantGPUs)
			}
		})
	}
}

func TestFragmentedServer(t *testing.T) {
	s := FragmentedA100Server(4)
	c, err := topology.NewCluster(topology.TransportRDMA, s)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.LogicalGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Type == topology.LinkNVLink {
			t.Fatal("fragmented server produced NVLink edges")
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package ir

import (
	"errors"
	"fmt"
	"testing"
)

// clone deep-copies a program so mutants never share op slices.
func clone(p *Program) *Program {
	out := *p
	out.Ranks = append([]int(nil), p.Ranks...)
	out.Chunks = append([]Chunk(nil), p.Chunks...)
	out.Ops = append([]Op(nil), p.Ops...)
	return &out
}

func goodPrograms(t *testing.T, n int) []*Program {
	t.Helper()
	ranks := spacedRanks(n)
	root := ranks[0]
	var progs []*Program
	for _, b := range []func() (*Program, error){
		func() (*Program, error) { return RingReduceScatter(ranks) },
		func() (*Program, error) { return RingAllGather(ranks) },
		func() (*Program, error) { return RingAllReduce(ranks) },
		func() (*Program, error) { return PairwiseAlltoAll(ranks) },
		func() (*Program, error) { return BinomialTreeBroadcast(ranks, root) },
		func() (*Program, error) { return BinomialTreeReduce(ranks, root) },
	} {
		p, err := b()
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p); err != nil {
			t.Fatalf("%s: seed program must verify: %v", p.Name, err)
		}
		progs = append(progs, p)
	}
	return progs
}

// TestMutationDropEveryTransfer drops each Send/Recv/Reduce op of every
// reference schedule, one at a time, and demands the verifier reject
// every mutant. (Copies are excluded: a root's input→output copy is
// already implied by the precondition, so dropping it is benign.)
func TestMutationDropEveryTransfer(t *testing.T) {
	for _, p := range goodPrograms(t, 4) {
		mutants := 0
		for i, op := range p.Ops {
			if op.Kind == OpCopy {
				continue
			}
			m := clone(p)
			m.Ops = append(m.Ops[:i:i], m.Ops[i+1:]...)
			m.Name = fmt.Sprintf("%s/drop-%d", p.Name, i)
			if err := Verify(m); err == nil {
				t.Errorf("%s: dropping %v went undetected", p.Name, op)
			}
			mutants++
		}
		if mutants == 0 {
			t.Errorf("%s: no transfer ops to mutate", p.Name)
		}
	}
}

// TestMutationTargeted checks that each corruption family lands on the
// intended rejection class, not merely on any error.
func TestMutationTargeted(t *testing.T) {
	ranks := []int{0, 1, 2, 3}

	t.Run("drop a send+recv pair", func(t *testing.T) {
		p, _ := RingAllReduce(ranks)
		// Remove the last allgather-phase pair: the schedule stays
		// internally consistent but a rank misses its final chunk.
		m := clone(p)
		m.Ops = m.Ops[:len(m.Ops)-2]
		if err := Verify(m); !errors.Is(err, ErrPostcondition) {
			t.Errorf("got %v, want ErrPostcondition", err)
		}
	})

	t.Run("drop only the recv", func(t *testing.T) {
		p, _ := RingAllGather(ranks)
		m := clone(p)
		m.Ops = m.Ops[:len(m.Ops)-1] // last op is the recv of a pair
		if err := Verify(m); !errors.Is(err, ErrUnmatched) {
			t.Errorf("got %v, want ErrUnmatched", err)
		}
	})

	t.Run("retarget a send's chunk", func(t *testing.T) {
		p, _ := RingReduceScatter(ranks)
		m := clone(p)
		for i := range m.Ops {
			if m.Ops[i].Kind == OpSend {
				m.Ops[i].Chunk = (m.Ops[i].Chunk + 1) % len(m.Chunks)
				break
			}
		}
		if err := Verify(m); !errors.Is(err, ErrUnmatched) {
			t.Errorf("got %v, want ErrUnmatched", err)
		}
	})

	t.Run("duplicate a send+reduce pair", func(t *testing.T) {
		p, _ := RingReduceScatter(ranks)
		m := clone(p)
		m.Ops = append(m.Ops, m.Ops[0], m.Ops[1]) // chunk reduced twice
		if err := Verify(m); !errors.Is(err, ErrDoubleReduce) {
			t.Errorf("got %v, want ErrDoubleReduce", err)
		}
	})

	t.Run("reduce weakened to recv", func(t *testing.T) {
		p, _ := RingReduceScatter(ranks)
		m := clone(p)
		for i := range m.Ops {
			if m.Ops[i].Kind == OpReduce {
				m.Ops[i].Kind = OpRecv // overwrites instead of accumulating
				break
			}
		}
		if err := Verify(m); !errors.Is(err, ErrPostcondition) {
			t.Errorf("got %v, want ErrPostcondition", err)
		}
	})

	t.Run("transfer shifted before its data arrives", func(t *testing.T) {
		p, _ := RingAllGather(ranks)
		m := clone(p)
		moved := 0
		for i := range m.Ops {
			// Pull one step-1 pair (forwarding a chunk received at step 0)
			// back to step 0.
			if m.Ops[i].Step == 1 {
				m.Ops[i].Step = 0
				if moved++; moved == 2 {
					break
				}
			}
		}
		if moved != 2 {
			t.Fatal("expected a step-1 send/recv pair to exist")
		}
		if err := Verify(m); !errors.Is(err, ErrUseBeforeRecv) {
			t.Errorf("got %v, want ErrUseBeforeRecv", err)
		}
	})

	t.Run("duplicated recv races itself", func(t *testing.T) {
		p, _ := RingAllGather(ranks)
		m := clone(p)
		m.Ops = append(m.Ops, m.Ops[0], m.Ops[1]) // same send+recv twice in one step
		if err := Verify(m); !errors.Is(err, ErrWriteConflict) {
			t.Errorf("got %v, want ErrWriteConflict", err)
		}
	})

	t.Run("swap reduce direction", func(t *testing.T) {
		p, _ := BinomialTreeReduce(ranks, 0)
		m := clone(p)
		// Reverse the first send+reduce pair: the child reduces the
		// parent instead, so the root ends with a partial sum.
		for i := 0; i+1 < len(m.Ops); i++ {
			if m.Ops[i].Kind == OpSend && m.Ops[i+1].Kind == OpReduce {
				m.Ops[i].Rank, m.Ops[i].Peer = m.Ops[i].Peer, m.Ops[i].Rank
				m.Ops[i+1].Rank, m.Ops[i+1].Peer = m.Ops[i+1].Peer, m.Ops[i+1].Rank
				break
			}
		}
		if err := Verify(m); err == nil {
			t.Error("swapped reduce direction went undetected")
		}
	})
}

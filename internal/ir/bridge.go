package ir

import (
	"fmt"

	"adapcc/internal/collective"
	"adapcc/internal/strategy"
)

// Lowered pairs an IR program with the strategy it was lowered from, so a
// verified program can be played on the existing collective engine. The
// executor still runs the strategy — chunk timing, routing and stream
// scheduling are its domain — which keeps IR-executed timelines
// bit-identical to the direct strategy path; the IR contributes the
// correctness proof.
type Lowered struct {
	Program  *Program
	Strategy *strategy.Strategy
}

// Lower lowers a single-root or rootless strategy (Reduce, Broadcast,
// AllReduce, AlltoAll) into an executable IR program.
func Lower(st *strategy.Strategy) (*Lowered, error) {
	p, err := FromStrategy(st)
	if err != nil {
		return nil, err
	}
	return &Lowered{Program: p, Strategy: st}, nil
}

// LowerReduceScatter lowers a multi-root Reduce assembly into an
// executable ReduceScatter program.
func LowerReduceScatter(st *strategy.Strategy) (*Lowered, error) {
	p, err := ReduceScatterFromStrategy(st)
	if err != nil {
		return nil, err
	}
	return &Lowered{Program: p, Strategy: st}, nil
}

// LowerAllGather lowers a multi-root Broadcast assembly into an
// executable AllGather program.
func LowerAllGather(st *strategy.Strategy) (*Lowered, error) {
	p, err := AllGatherFromStrategy(st)
	if err != nil {
		return nil, err
	}
	return &Lowered{Program: p, Strategy: st}, nil
}

// Play verifies the program and, only if the proof passes, runs the
// backing strategy on the executor. The op's Strategy field is supplied
// by the Lowered pair; every other field (inputs, mode, class, OnDone)
// is the caller's.
func (l *Lowered) Play(exec *collective.Executor, op collective.Op) error {
	if l == nil || l.Program == nil || l.Strategy == nil {
		return fmt.Errorf("%w: empty lowering", ErrProgram)
	}
	if err := Verify(l.Program); err != nil {
		return err
	}
	op.Strategy = l.Strategy
	return exec.Run(op)
}

package ir

import (
	"errors"
	"testing"
)

// spacedRanks builds a non-contiguous rank set so the tests exercise
// rank-value → index translation, not just identity mappings.
func spacedRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i*3 + 1
	}
	return out
}

// TestHandSchedulesVerify proves every shipped reference schedule at a
// spread of sizes, including non-powers of two and non-contiguous ranks.
func TestHandSchedulesVerify(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16} {
		ranks := spacedRanks(n)
		root := ranks[n/2]
		builds := []struct {
			name  string
			build func() (*Program, error)
		}{
			{"ring-reducescatter", func() (*Program, error) { return RingReduceScatter(ranks) }},
			{"ring-allgather", func() (*Program, error) { return RingAllGather(ranks) }},
			{"ring-allreduce", func() (*Program, error) { return RingAllReduce(ranks) }},
			{"pairwise-alltoall", func() (*Program, error) { return PairwiseAlltoAll(ranks) }},
			{"binomial-broadcast", func() (*Program, error) { return BinomialTreeBroadcast(ranks, root) }},
			{"binomial-reduce", func() (*Program, error) { return BinomialTreeReduce(ranks, root) }},
		}
		for _, b := range builds {
			p, err := b.build()
			if err != nil {
				t.Fatalf("%s/%d: build: %v", b.name, n, err)
			}
			if err := Verify(p); err != nil {
				t.Errorf("%s/%d: %v", b.name, n, err)
			}
			st := p.Stats()
			if st.Ranks != n || st.Steps < 1 {
				t.Errorf("%s/%d: implausible stats %+v", b.name, n, st)
			}
		}
	}
}

// TestVerifyStructuralErrors drives every structural rejection path.
func TestVerifyStructuralErrors(t *testing.T) {
	base := func() *Program {
		return &Program{
			Name:       "bad",
			Collective: Broadcast,
			Ranks:      []int{0, 1},
			Root:       0,
			Chunks:     []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpCopy, Rank: 0, Peer: -1, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
			},
		}
	}
	if err := Verify(base()); err != nil {
		t.Fatalf("baseline program must verify: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"one rank", func(p *Program) { p.Ranks = []int{0} }},
		{"unsorted ranks", func(p *Program) { p.Ranks = []int{1, 0} }},
		{"duplicate ranks", func(p *Program) { p.Ranks = []int{0, 0} }},
		{"root not a participant", func(p *Program) { p.Root = 7 }},
		{"unknown collective", func(p *Program) { p.Collective = Collective(99) }},
		{"no chunks", func(p *Program) { p.Chunks = nil }},
		{"bad op kind", func(p *Program) { p.Ops[1].Kind = Kind(42) }},
		{"op rank not a participant", func(p *Program) { p.Ops[1].Rank = 9 }},
		{"chunk index out of range", func(p *Program) { p.Ops[1].Chunk = 3 }},
		{"negative step", func(p *Program) { p.Ops[1].Step = -1 }},
		{"peer not a participant", func(p *Program) { p.Ops[1].Peer = 9 }},
		{"self transfer", func(p *Program) { p.Ops[1].Peer = p.Ops[1].Rank }},
		{"copy with a peer", func(p *Program) { p.Ops[0].Peer = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if err := Verify(p); !errors.Is(err, ErrProgram) {
				t.Errorf("got %v, want ErrProgram", err)
			}
		})
	}

	t.Run("shard gap", func(t *testing.T) {
		p, err := RingReduceScatter([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		p.Chunks[2] = ShardChunk(0) // shard 2 loses its only chunk
		if err := Verify(p); !errors.Is(err, ErrProgram) {
			t.Errorf("got %v, want ErrProgram", err)
		}
	})
	t.Run("shard out of range", func(t *testing.T) {
		p, err := RingAllGather([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		p.Chunks[0] = ShardChunk(5)
		if err := Verify(p); !errors.Is(err, ErrProgram) {
			t.Errorf("got %v, want ErrProgram", err)
		}
	})
	t.Run("alltoall pair missing", func(t *testing.T) {
		p, err := PairwiseAlltoAll([]int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		p.Chunks[len(p.Chunks)-1] = p.Chunks[len(p.Chunks)-2] // last pair now duplicated, one pair uncovered
		if err := Verify(p); !errors.Is(err, ErrProgram) {
			t.Errorf("got %v, want ErrProgram", err)
		}
	})
}

// TestVerifySemanticErrors drives each semantic sentinel with a minimal
// hand-built trigger.
func TestVerifySemanticErrors(t *testing.T) {
	t.Run("send without receiver", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Broadcast, Ranks: []int{0, 1}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUnmatched) {
			t.Errorf("got %v, want ErrUnmatched", err)
		}
	})
	t.Run("recv without sender", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Broadcast, Ranks: []int{0, 1}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpRecv, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUnmatched) {
			t.Errorf("got %v, want ErrUnmatched", err)
		}
	})
	t.Run("send of an unheld chunk", func(t *testing.T) {
		// In an AllGather, rank 0 never holds shard 1's chunk at step 0.
		p := &Program{
			Name: "t", Collective: AllGather, Ranks: []int{0, 1}, Root: -1,
			Chunks: []Chunk{ShardChunk(0), ShardChunk(1)},
			Ops: []Op{
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 1, Step: 0},
				{Kind: OpRecv, Rank: 1, Peer: 0, Chunk: 1, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUseBeforeRecv) {
			t.Errorf("got %v, want ErrUseBeforeRecv", err)
		}
	})
	t.Run("copy of an unheld chunk", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: AllGather, Ranks: []int{0, 1}, Root: -1,
			Chunks: []Chunk{ShardChunk(0), ShardChunk(1)},
			Ops: []Op{
				{Kind: OpCopy, Rank: 0, Peer: -1, Chunk: 1, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUseBeforeRecv) {
			t.Errorf("got %v, want ErrUseBeforeRecv", err)
		}
	})
	t.Run("reduce without a local base", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: AllGather, Ranks: []int{0, 1}, Root: -1,
			Chunks: []Chunk{ShardChunk(0), ShardChunk(1)},
			Ops: []Op{
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpReduce, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUseBeforeRecv) {
			t.Errorf("got %v, want ErrUseBeforeRecv", err)
		}
	})
	t.Run("double reduce across steps", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Reduce, Ranks: []int{0, 1}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpReduce, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 1, Peer: 0, Chunk: 0, Step: 1},
				{Kind: OpReduce, Rank: 0, Peer: 1, Chunk: 0, Step: 1},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrDoubleReduce) {
			t.Errorf("got %v, want ErrDoubleReduce", err)
		}
	})
	t.Run("two recvs race on one slot", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Broadcast, Ranks: []int{0, 1, 2, 3}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 0, Peer: 2, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 2, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 1, Peer: 3, Chunk: 0, Step: 1},
				{Kind: OpRecv, Rank: 3, Peer: 1, Chunk: 0, Step: 1},
				{Kind: OpSend, Rank: 2, Peer: 3, Chunk: 0, Step: 1},
				{Kind: OpRecv, Rank: 3, Peer: 2, Chunk: 0, Step: 1},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrWriteConflict) {
			t.Errorf("got %v, want ErrWriteConflict", err)
		}
	})
	t.Run("recv and reduce race on one slot", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Reduce, Ranks: []int{0, 1}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpReduce, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrWriteConflict) {
			t.Errorf("got %v, want ErrWriteConflict", err)
		}
	})
	t.Run("rank never receives", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Broadcast, Ranks: []int{0, 1}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpCopy, Rank: 0, Peer: -1, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrPostcondition) {
			t.Errorf("got %v, want ErrPostcondition", err)
		}
	})
	t.Run("partial sum at the root", func(t *testing.T) {
		p := &Program{
			Name: "t", Collective: Reduce, Ranks: []int{0, 1, 2}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpReduce, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				// rank 2's contribution never reaches the root
			},
		}
		if err := Verify(p); !errors.Is(err, ErrPostcondition) {
			t.Errorf("got %v, want ErrPostcondition", err)
		}
	})
	t.Run("forwarding in the arrival step", func(t *testing.T) {
		// r1 receives at step 0 and forwards at step 0: data committed at
		// the END of a step cannot leave in the same step.
		p := &Program{
			Name: "t", Collective: Broadcast, Ranks: []int{0, 1, 2}, Root: 0,
			Chunks: []Chunk{UnshardedChunk()},
			Ops: []Op{
				{Kind: OpSend, Rank: 0, Peer: 1, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 1, Peer: 0, Chunk: 0, Step: 0},
				{Kind: OpSend, Rank: 1, Peer: 2, Chunk: 0, Step: 0},
				{Kind: OpRecv, Rank: 2, Peer: 1, Chunk: 0, Step: 0},
			},
		}
		if err := Verify(p); !errors.Is(err, ErrUseBeforeRecv) {
			t.Errorf("got %v, want ErrUseBeforeRecv", err)
		}
	})
}

package ir

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel error classes. Verify wraps each with program context, so
// callers test them with errors.Is.
var (
	// ErrProgram marks a structurally malformed program (bad ranks, op
	// fields out of range, chunk table not covering the collective).
	ErrProgram = errors.New("ir: malformed program")
	// ErrUnmatched marks a Send with no matching receiver, or a
	// Recv/Reduce with no matching Send, at the same (step, chunk, src, dst).
	ErrUnmatched = errors.New("ir: unmatched transfer")
	// ErrUseBeforeRecv marks a rank sending or copying a chunk it does not
	// hold at that step.
	ErrUseBeforeRecv = errors.New("ir: use before receive")
	// ErrDoubleReduce marks a reduction that would fold some rank's
	// contribution into an accumulator that already contains it.
	ErrDoubleReduce = errors.New("ir: double reduce")
	// ErrWriteConflict marks two receives landing on the same (rank, chunk)
	// in the same step with no defined order.
	ErrWriteConflict = errors.New("ir: conflicting writes")
	// ErrPostcondition marks a schedule that runs cleanly but leaves some
	// rank without its required chunks or with the wrong contribution set.
	ErrPostcondition = errors.New("ir: postcondition failed")
)

// slot addresses one chunk's state at one rank (both as indices).
type slot struct{ rank, chunk int }

// xferKey identifies a point-to-point transfer for send/recv matching.
type xferKey struct{ step, chunk, src, dst int }

// Verify proves the program implements its collective: starting from the
// precondition state, executing the ops in step order leaves every rank
// holding exactly the chunks — with exactly the contribution sets — the
// postcondition demands. It rejects structurally malformed programs,
// unmatched transfers, use-before-receive, double reduction, and
// same-step write conflicts.
//
// Semantics: all ops of a step read the state committed by previous
// steps; all receives of a step commit together at its end. Data can
// therefore never be forwarded in the step it arrives.
func Verify(p *Program) error {
	n := len(p.Ranks)
	if err := p.validateStructure(); err != nil {
		return err
	}

	// state[slot] = contribution set currently held, or absent.
	state := make(map[slot]contrib)
	for s, c := range p.preconditions() {
		state[s] = c
	}

	// Pair sends with receivers: every Send must have exactly as many
	// matching Recv/Reduce ops at the same (step, chunk, src, dst), and
	// vice versa. Our IR is point-to-point, so the counts must be equal
	// (a multicast is expressed as multiple sends).
	sends := make(map[xferKey]int)
	recvs := make(map[xferKey]int)
	for _, op := range p.Ops {
		switch op.Kind {
		case OpSend:
			sends[xferKey{op.Step, op.Chunk, op.Rank, op.Peer}]++
		case OpRecv, OpReduce:
			recvs[xferKey{op.Step, op.Chunk, op.Peer, op.Rank}]++
		}
	}
	for k, cnt := range sends {
		if recvs[k] != cnt {
			return fmt.Errorf("%w: %s: step %d chunk %d r%d -> r%d has %d send(s) but %d receive(s)",
				ErrUnmatched, p.Name, k.step, k.chunk, k.src, k.dst, cnt, recvs[k])
		}
	}
	for k, cnt := range recvs {
		if sends[k] != cnt {
			return fmt.Errorf("%w: %s: step %d chunk %d r%d -> r%d has %d receive(s) but %d send(s)",
				ErrUnmatched, p.Name, k.step, k.chunk, k.src, k.dst, cnt, sends[k])
		}
	}

	// Group ops by step, ascending.
	byStep := make(map[int][]Op)
	var steps []int
	for _, op := range p.Ops {
		if _, ok := byStep[op.Step]; !ok {
			steps = append(steps, op.Step)
		}
		byStep[op.Step] = append(byStep[op.Step], op)
	}
	sort.Ints(steps)

	for _, step := range steps {
		ops := byStep[step]

		// Phase A: reads. Senders and copiers must hold their chunk in the
		// state committed by earlier steps.
		inflight := make(map[xferKey]contrib)
		for _, op := range ops {
			switch op.Kind {
			case OpSend:
				held, ok := state[slot{p.rankIndex(op.Rank), op.Chunk}]
				if !ok {
					return fmt.Errorf("%w: %s: %v: r%d does not hold chunk %d yet",
						ErrUseBeforeRecv, p.Name, op, op.Rank, op.Chunk)
				}
				inflight[xferKey{op.Step, op.Chunk, op.Rank, op.Peer}] = held
			case OpCopy:
				if _, ok := state[slot{p.rankIndex(op.Rank), op.Chunk}]; !ok {
					return fmt.Errorf("%w: %s: %v: r%d does not hold chunk %d yet",
						ErrUseBeforeRecv, p.Name, op, op.Rank, op.Chunk)
				}
			}
		}

		// Phase B: writes. Computed against the start-of-step state and
		// committed together afterwards. At most one Recv may land on a
		// slot per step; Reduces may stack on a slot if their contribution
		// sets stay disjoint; a Recv and a Reduce on the same slot in the
		// same step have no defined order.
		type pendingWrite struct {
			val     contrib
			recvs   int
			reduces int
		}
		pending := make(map[slot]*pendingWrite)
		for _, op := range ops {
			if op.Kind != OpRecv && op.Kind != OpReduce {
				continue
			}
			src := inflight[xferKey{op.Step, op.Chunk, op.Peer, op.Rank}]
			if src == nil {
				// Matched counts guarantee a Send exists at this key, but it
				// may itself have failed phase A only if we returned already;
				// reaching here with nil means counts matched yet no sender
				// held data — impossible, guard anyway.
				return fmt.Errorf("%w: %s: %v: no in-flight data", ErrUnmatched, p.Name, op)
			}
			sl := slot{p.rankIndex(op.Rank), op.Chunk}
			pw := pending[sl]
			switch op.Kind {
			case OpRecv:
				if pw != nil {
					return fmt.Errorf("%w: %s: %v: chunk %d at r%d already written this step",
						ErrWriteConflict, p.Name, op, op.Chunk, op.Rank)
				}
				pending[sl] = &pendingWrite{val: src.clone(), recvs: 1}
			case OpReduce:
				base, ok := state[sl]
				if !ok {
					return fmt.Errorf("%w: %s: %v: r%d has no local chunk %d to reduce into",
						ErrUseBeforeRecv, p.Name, op, op.Rank, op.Chunk)
				}
				if pw == nil {
					pw = &pendingWrite{val: base.clone()}
					pending[sl] = pw
				} else if pw.recvs > 0 {
					return fmt.Errorf("%w: %s: %v: recv and reduce hit chunk %d at r%d in the same step",
						ErrWriteConflict, p.Name, op, op.Chunk, op.Rank)
				}
				if pw.val.intersects(src) {
					return fmt.Errorf("%w: %s: %v: contributions %v already folded in",
						ErrDoubleReduce, p.Name, op, src.ranks(p))
				}
				pw.val.union(src)
				pw.reduces++
			}
		}
		for sl, pw := range pending {
			state[sl] = pw.val
		}
	}

	// Postconditions.
	for sl, want := range p.postconditions() {
		got, ok := state[sl]
		if !ok {
			return fmt.Errorf("%w: %s: r%d never receives chunk %d",
				ErrPostcondition, p.Name, p.Ranks[sl.rank], sl.chunk)
		}
		if !got.equal(want) {
			return fmt.Errorf("%w: %s: r%d chunk %d holds contributions %v, want %v",
				ErrPostcondition, p.Name, p.Ranks[sl.rank], sl.chunk, got.ranks(p), contribRanks(want, p))
		}
	}
	_ = n
	return nil
}

func contribRanks(c contrib, p *Program) []int { return c.ranks(p) }

// validateStructure checks the program shell before any simulation.
func (p *Program) validateStructure() error {
	n := len(p.Ranks)
	if n < 2 {
		return fmt.Errorf("%w: %s: need at least 2 ranks, have %d", ErrProgram, p.Name, n)
	}
	for i := 1; i < n; i++ {
		if p.Ranks[i] <= p.Ranks[i-1] {
			return fmt.Errorf("%w: %s: ranks must be sorted and distinct", ErrProgram, p.Name)
		}
	}
	switch p.Collective {
	case Broadcast, Reduce:
		if p.rankIndex(p.Root) < 0 {
			return fmt.Errorf("%w: %s: root %d is not a participant", ErrProgram, p.Name, p.Root)
		}
	case AllReduce, ReduceScatter, AllGather, AlltoAll:
		// rootless
	default:
		return fmt.Errorf("%w: %s: unknown collective %d", ErrProgram, p.Name, int(p.Collective))
	}
	if len(p.Chunks) == 0 {
		return fmt.Errorf("%w: %s: no chunks", ErrProgram, p.Name)
	}

	// Chunk-table coverage: the chunk roles must span the collective's
	// full footprint, otherwise a schedule could satisfy a postcondition
	// trivially by declaring less data.
	switch p.Collective {
	case ReduceScatter, AllGather:
		seen := make([]bool, n)
		for ci, c := range p.Chunks {
			if c.Shard < 0 || c.Shard >= n {
				return fmt.Errorf("%w: %s: chunk %d shard %d out of range", ErrProgram, p.Name, ci, c.Shard)
			}
			seen[c.Shard] = true
		}
		for s, ok := range seen {
			if !ok {
				return fmt.Errorf("%w: %s: shard %d has no chunks", ErrProgram, p.Name, s)
			}
		}
	case AlltoAll:
		covered := make(map[[2]int]bool)
		for ci, c := range p.Chunks {
			if p.rankIndex(c.Src) < 0 || p.rankIndex(c.Dst) < 0 {
				return fmt.Errorf("%w: %s: chunk %d pair (%d,%d) not participants", ErrProgram, p.Name, ci, c.Src, c.Dst)
			}
			covered[[2]int{c.Src, c.Dst}] = true
		}
		for _, src := range p.Ranks {
			for _, dst := range p.Ranks {
				if !covered[[2]int{src, dst}] {
					return fmt.Errorf("%w: %s: no chunk for pair r%d -> r%d", ErrProgram, p.Name, src, dst)
				}
			}
		}
	}

	for _, op := range p.Ops {
		switch op.Kind {
		case OpSend, OpRecv, OpReduce, OpCopy:
		default:
			return fmt.Errorf("%w: %s: bad op kind %d", ErrProgram, p.Name, int(op.Kind))
		}
		if p.rankIndex(op.Rank) < 0 {
			return fmt.Errorf("%w: %s: %v: rank %d is not a participant", ErrProgram, p.Name, op, op.Rank)
		}
		if op.Chunk < 0 || op.Chunk >= len(p.Chunks) {
			return fmt.Errorf("%w: %s: %v: chunk index out of range", ErrProgram, p.Name, op)
		}
		if op.Step < 0 {
			return fmt.Errorf("%w: %s: %v: negative step", ErrProgram, p.Name, op)
		}
		switch op.Kind {
		case OpSend, OpRecv, OpReduce:
			if p.rankIndex(op.Peer) < 0 {
				return fmt.Errorf("%w: %s: %v: peer %d is not a participant", ErrProgram, p.Name, op, op.Peer)
			}
			if op.Peer == op.Rank {
				return fmt.Errorf("%w: %s: %v: self transfer", ErrProgram, p.Name, op)
			}
		case OpCopy:
			if op.Peer != -1 {
				return fmt.Errorf("%w: %s: %v: copy must have peer -1", ErrProgram, p.Name, op)
			}
		}
	}
	return nil
}

// preconditions derives the initial chunk state from the collective.
func (p *Program) preconditions() map[slot]contrib {
	n := len(p.Ranks)
	pre := make(map[slot]contrib)
	for ci, c := range p.Chunks {
		switch p.Collective {
		case Broadcast:
			ri := p.rankIndex(p.Root)
			pre[slot{ri, ci}] = singleton(n, ri)
		case Reduce, AllReduce, ReduceScatter:
			// Every rank starts with its own contribution for every chunk.
			for ri := 0; ri < n; ri++ {
				pre[slot{ri, ci}] = singleton(n, ri)
			}
		case AllGather:
			// Shard s starts at rank index s only.
			pre[slot{c.Shard, ci}] = singleton(n, c.Shard)
		case AlltoAll:
			ri := p.rankIndex(c.Src)
			pre[slot{ri, ci}] = singleton(n, ri)
		}
	}
	return pre
}

// postconditions derives the required final chunk state.
func (p *Program) postconditions() map[slot]contrib {
	n := len(p.Ranks)
	post := make(map[slot]contrib)
	for ci, c := range p.Chunks {
		switch p.Collective {
		case Broadcast:
			root := singleton(n, p.rankIndex(p.Root))
			for ri := 0; ri < n; ri++ {
				post[slot{ri, ci}] = root
			}
		case Reduce:
			post[slot{p.rankIndex(p.Root), ci}] = fullContrib(n)
		case AllReduce:
			full := fullContrib(n)
			for ri := 0; ri < n; ri++ {
				post[slot{ri, ci}] = full
			}
		case ReduceScatter:
			post[slot{c.Shard, ci}] = fullContrib(n)
		case AllGather:
			src := singleton(n, c.Shard)
			for ri := 0; ri < n; ri++ {
				post[slot{ri, ci}] = src
			}
		case AlltoAll:
			post[slot{p.rankIndex(c.Dst), ci}] = singleton(n, p.rankIndex(c.Src))
		}
	}
	return post
}

// Package ir is the chunk-level collective intermediate representation
// (the GC3/SCCL direction named in the ROADMAP): a collective schedule is
// a flat list of send / recv / reduce / copy operations keyed by
// (rank, chunk, step), together with a chunk table tying every chunk to
// its role in the collective's pre- and postconditions. Both the
// synthesizer's strategies and hand-written ring/tree algorithms lower
// into this form (lower.go, schedules.go), and a verifier (verify.go)
// proves — per GC3's correctness check — that the schedule delivers each
// rank its required chunks with every contribution reduced exactly once.
//
// The IR deliberately models the *logical* data movement only: routing,
// link speeds and stream scheduling live in internal/strategy and the
// executor. A step is a logical dependency tick, not a unit of time —
// data received at step s is usable at step s+1 — so the verifier checks
// causality and correctness, never performance.
package ir

import (
	"fmt"
	"sort"
)

// Kind names an IR operation.
type Kind uint8

const (
	// OpSend transmits the rank's current copy of a chunk to Peer. The
	// matching OpRecv or OpReduce at Peer must carry the same (chunk, step).
	OpSend Kind = iota + 1
	// OpRecv receives a chunk from Peer, overwriting any local copy.
	OpRecv
	// OpReduce receives a chunk from Peer and combines it element-wise into
	// the local copy, which must exist and must not share contributions
	// with the incoming data (each rank's input is summed exactly once).
	OpReduce
	// OpCopy touches a locally held chunk (e.g. an input→output copy of a
	// root's own shard, or an AlltoAll diagonal block that never travels).
	// It asserts the chunk is held; it moves no data between ranks.
	OpCopy
)

// String names the op kind as the textual IR spells it.
func (k Kind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpReduce:
		return "reduce"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Op is one IR operation, executed by Rank at logical Step.
type Op struct {
	Kind Kind
	// Rank executes the op.
	Rank int
	// Peer is the counterpart rank: the destination of a Send, the source
	// of a Recv/Reduce; -1 for Copy.
	Peer int
	// Chunk indexes the program's chunk table.
	Chunk int
	// Step is the logical dependency tick. All sends of a step read the
	// state left by step-1; all receives of a step commit together at its
	// end, so a chunk received at step s is usable from step s+1 on.
	Step int
}

// String formats the op as "step 3: send r0 -> r1 chunk 7".
func (o Op) String() string {
	switch o.Kind {
	case OpSend:
		return fmt.Sprintf("step %d: send r%d -> r%d chunk %d", o.Step, o.Rank, o.Peer, o.Chunk)
	case OpRecv:
		return fmt.Sprintf("step %d: recv r%d <- r%d chunk %d", o.Step, o.Rank, o.Peer, o.Chunk)
	case OpReduce:
		return fmt.Sprintf("step %d: reduce r%d <- r%d chunk %d", o.Step, o.Rank, o.Peer, o.Chunk)
	case OpCopy:
		return fmt.Sprintf("step %d: copy r%d chunk %d", o.Step, o.Rank, o.Chunk)
	default:
		return fmt.Sprintf("step %d: %v r%d chunk %d", o.Step, o.Kind, o.Rank, o.Chunk)
	}
}

// Collective names the semantics a program must satisfy. Unlike
// strategy.Primitive this includes ReduceScatter and AllGather, which the
// strategy layer only knows as multi-root Reduce/Broadcast assemblies.
type Collective uint8

const (
	Broadcast Collective = iota + 1
	Reduce
	AllReduce
	ReduceScatter
	AllGather
	AlltoAll
)

// String names the collective.
func (c Collective) String() string {
	switch c {
	case Broadcast:
		return "broadcast"
	case Reduce:
		return "reduce"
	case AllReduce:
		return "allreduce"
	case ReduceScatter:
		return "reducescatter"
	case AllGather:
		return "allgather"
	case AlltoAll:
		return "alltoall"
	default:
		return fmt.Sprintf("collective(%d)", int(c))
	}
}

// Chunk ties one chunk id to its role in the collective's conditions.
type Chunk struct {
	// Shard, for ReduceScatter/AllGather, is the index (into Ranks) of the
	// shard the chunk belongs to; -1 for the unsharded primitives.
	Shard int
	// Src and Dst, for AlltoAll, are the block's sender and receiver
	// ranks (Src == Dst for a diagonal block that stays local); -1
	// elsewhere.
	Src, Dst int
}

// Program is one verifiable collective schedule. The pre- and
// postconditions are derived from (Collective, Ranks, Root, Chunks) by the
// verifier — never stated by the lowering — so a schedule cannot weaken
// the specification it is checked against.
type Program struct {
	// Name labels the program in errors and reports.
	Name string
	// Collective selects the pre/postcondition pair.
	Collective Collective
	// Ranks are the participating workers, sorted, distinct.
	Ranks []int
	// Root is the root rank for Broadcast/Reduce; -1 otherwise.
	Root int
	// Chunks is the chunk table; op Chunk fields index into it.
	Chunks []Chunk
	// Ops is the schedule.
	Ops []Op
}

// UnshardedChunk is the chunk-table entry of the primitives whose chunks
// carry no shard or pair identity (Broadcast/Reduce/AllReduce).
func UnshardedChunk() Chunk { return Chunk{Shard: -1, Src: -1, Dst: -1} }

// ShardChunk is a ReduceScatter/AllGather chunk belonging to shard s.
func ShardChunk(s int) Chunk { return Chunk{Shard: s, Src: -1, Dst: -1} }

// PairChunk is an AlltoAll block from src to dst.
func PairChunk(src, dst int) Chunk { return Chunk{Shard: -1, Src: src, Dst: dst} }

// Stats summarises a program for reports and the -verify CLI output.
type Stats struct {
	Ranks, Chunks, Steps          int
	Sends, Recvs, Reduces, Copies int
}

// Stats counts the program's shape.
func (p *Program) Stats() Stats {
	s := Stats{Ranks: len(p.Ranks), Chunks: len(p.Chunks)}
	maxStep := -1
	for _, op := range p.Ops {
		if op.Step > maxStep {
			maxStep = op.Step
		}
		switch op.Kind {
		case OpSend:
			s.Sends++
		case OpRecv:
			s.Recvs++
		case OpReduce:
			s.Reduces++
		case OpCopy:
			s.Copies++
		}
	}
	s.Steps = maxStep + 1
	return s
}

// rankIndex maps rank value → position in Ranks, or -1.
func (p *Program) rankIndex(rank int) int {
	i := sort.SearchInts(p.Ranks, rank)
	if i < len(p.Ranks) && p.Ranks[i] == rank {
		return i
	}
	return -1
}

// contrib is a set of contributing rank indices (positions in Ranks),
// stored as a bitset so union/intersection over thousands of ranks stays
// cheap during verification.
type contrib []uint64

func newContrib(n int) contrib { return make(contrib, (n+63)/64) }

func singleton(n, idx int) contrib {
	c := newContrib(n)
	c[idx/64] |= 1 << uint(idx%64)
	return c
}

func fullContrib(n int) contrib {
	c := newContrib(n)
	for i := 0; i < n; i++ {
		c[i/64] |= 1 << uint(i%64)
	}
	return c
}

func (c contrib) clone() contrib {
	out := make(contrib, len(c))
	copy(out, c)
	return out
}

func (c contrib) equal(o contrib) bool {
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

func (c contrib) intersects(o contrib) bool {
	for i := range c {
		if c[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (c contrib) union(o contrib) {
	for i := range c {
		c[i] |= o[i]
	}
}

// ranks lists the member rank values for error messages.
func (c contrib) ranks(p *Program) []int {
	var out []int
	for i, r := range p.Ranks {
		if c[i/64]&(1<<uint(i%64)) != 0 {
			out = append(out, r)
		}
	}
	return out
}

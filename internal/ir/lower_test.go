package ir_test

import (
	"errors"
	"fmt"
	"testing"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/ir"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// synthCosts builds a homogeneous cluster and its cost model.
func synthCosts(t *testing.T, servers, gpus int) *synth.Costs {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, servers, gpus)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 11)
	if err != nil {
		t.Fatal(err)
	}
	return synth.NewCosts(env.Graph, nil)
}

// TestLowerSynthesizedStrategies lowers every primitive the synthesizer
// emits — at 4, 8 and 16 ranks — into the IR and runs the verifier on
// each. This is the end-to-end guarantee that synthesised plans are
// provably correct schedules, not just plausible ones.
func TestLowerSynthesizedStrategies(t *testing.T) {
	shapes := []struct{ servers, gpus int }{{1, 4}, {2, 4}, {4, 4}}
	prims := []struct {
		prim strategy.Primitive
		root int
		want ir.Collective
	}{
		{strategy.Reduce, 0, ir.Reduce},
		{strategy.Broadcast, 0, ir.Broadcast},
		{strategy.AllReduce, -1, ir.AllReduce},
		{strategy.AlltoAll, -1, ir.AlltoAll},
	}
	for _, sh := range shapes {
		costs := synthCosts(t, sh.servers, sh.gpus)
		for _, pc := range prims {
			for _, m := range []int{1, 2} {
				name := fmt.Sprintf("%dx%d/%v/M%d", sh.servers, sh.gpus, pc.prim, m)
				t.Run(name, func(t *testing.T) {
					res, err := synth.Synthesize(costs, synth.Request{
						Primitive: pc.prim, Bytes: 1 << 20, Root: pc.root, M: m,
					})
					if err != nil {
						t.Fatal(err)
					}
					prog, err := ir.FromStrategy(res.Strategy)
					if err != nil {
						t.Fatal(err)
					}
					if prog.Collective != pc.want {
						t.Fatalf("lowered to %v, want %v", prog.Collective, pc.want)
					}
					if len(prog.Ranks) != sh.servers*sh.gpus {
						t.Fatalf("program spans %d ranks, want %d", len(prog.Ranks), sh.servers*sh.gpus)
					}
					if err := ir.Verify(prog); err != nil {
						t.Errorf("verifier rejected a synthesised schedule: %v", err)
					}
				})
			}
		}
	}
}

// TestLowerMultiRootAssemblies lowers the multi-root ReduceScatter and
// AllGather assemblies — the plans the first-class core collectives run —
// and verifies them at 4, 8 and 16 ranks.
func TestLowerMultiRootAssemblies(t *testing.T) {
	shapes := []struct{ servers, gpus int }{{1, 4}, {2, 4}, {4, 4}}
	for _, sh := range shapes {
		costs := synthCosts(t, sh.servers, sh.gpus)
		n := sh.servers * sh.gpus
		for _, pc := range []struct {
			prim  strategy.Primitive
			lower func(*strategy.Strategy) (*ir.Program, error)
			want  ir.Collective
		}{
			{strategy.Reduce, ir.ReduceScatterFromStrategy, ir.ReduceScatter},
			{strategy.Broadcast, ir.AllGatherFromStrategy, ir.AllGather},
		} {
			t.Run(fmt.Sprintf("%dx%d/%v", sh.servers, sh.gpus, pc.want), func(t *testing.T) {
				res, err := synth.MultiRoot(costs, synth.Request{
					Primitive: pc.prim, Bytes: int64(n) << 18,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := len(res.Strategy.SubCollectives); got < n {
					t.Fatalf("assembly has %d sub-collectives, want >= %d", got, n)
				}
				prog, err := pc.lower(res.Strategy)
				if err != nil {
					t.Fatal(err)
				}
				if prog.Collective != pc.want {
					t.Fatalf("lowered to %v, want %v", prog.Collective, pc.want)
				}
				if err := ir.Verify(prog); err != nil {
					t.Errorf("verifier rejected a multi-root assembly: %v", err)
				}

				// The single-root lowering must refuse the same strategy:
				// its roots differ per sub-collective by construction.
				if _, err := ir.FromStrategy(res.Strategy); !errors.Is(err, ir.ErrProgram) {
					t.Errorf("FromStrategy accepted a multi-root assembly: %v", err)
				}
			})
		}
	}
}

// TestLowerRejectsWrongPrimitive pins the lowering entry contracts.
func TestLowerRejectsWrongPrimitive(t *testing.T) {
	costs := synthCosts(t, 1, 4)
	res, err := synth.Synthesize(costs, synth.Request{Primitive: strategy.AllReduce, Bytes: 1 << 20, Root: -1, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.ReduceScatterFromStrategy(res.Strategy); !errors.Is(err, ir.ErrProgram) {
		t.Errorf("ReduceScatterFromStrategy accepted an AllReduce strategy: %v", err)
	}
	if _, err := ir.AllGatherFromStrategy(res.Strategy); !errors.Is(err, ir.ErrProgram) {
		t.Errorf("AllGatherFromStrategy accepted an AllReduce strategy: %v", err)
	}
	if _, err := ir.FromStrategy(nil); !errors.Is(err, ir.ErrProgram) {
		t.Errorf("FromStrategy accepted nil: %v", err)
	}
}

package ir_test

import (
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/ir"
	"adapcc/internal/payload"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

// timelineEvent is the timing-plane fingerprint of one trace event.
type timelineEvent struct {
	Name       string
	Cat        string
	PID, TID   int
	Start, Dur time.Duration
}

// runAllReduce synthesises and executes one AllReduce on a fresh
// deterministic environment, routed either directly through the executor
// or through the verified IR bridge.
func runAllReduce(t *testing.T, viaIR bool) ([]timelineEvent, collective.Result) {
	t.Helper()
	c, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.AllReduce, Bytes: 2 << 20, Root: -1, M: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	env.Exec.SetTracer(tr)
	var got collective.Result
	op := collective.Op{
		Mode:   payload.Phantom,
		OnDone: func(r collective.Result) { got = r },
	}
	if viaIR {
		low, err := ir.Lower(res.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		if err := low.Play(env.Exec, op); err != nil {
			t.Fatal(err)
		}
	} else {
		op.Strategy = res.Strategy
		if err := env.Exec.Run(op); err != nil {
			t.Fatal(err)
		}
	}
	env.Engine.Run()
	if got.Elapsed <= 0 {
		t.Fatal("collective never completed")
	}
	evs := make([]timelineEvent, 0, tr.Len())
	for _, e := range tr.Events() {
		evs = append(evs, timelineEvent{Name: e.Name, Cat: e.Cat, PID: e.PID, TID: e.TID, Start: e.Start, Dur: e.Dur})
	}
	return evs, got
}

// TestPlayTimelineBitIdentical is the bridge's load-bearing guarantee: an
// AllReduce played through Lower + Play — verification included — has a
// bit-identical virtual timeline to the direct strategy path. The IR adds
// a proof, never a perturbation.
func TestPlayTimelineBitIdentical(t *testing.T) {
	dEvs, dRes := runAllReduce(t, false)
	iEvs, iRes := runAllReduce(t, true)
	if dRes.Elapsed != iRes.Elapsed {
		t.Errorf("elapsed diverged: direct %v, via IR %v", dRes.Elapsed, iRes.Elapsed)
	}
	if len(dEvs) != len(iEvs) {
		t.Fatalf("event counts diverged: direct %d, via IR %d", len(dEvs), len(iEvs))
	}
	for i := range dEvs {
		if dEvs[i] != iEvs[i] {
			t.Fatalf("event %d diverged:\ndirect %+v\nvia IR %+v", i, dEvs[i], iEvs[i])
		}
	}
}

// TestPlayRefusesCorruptProgram proves Play is a gate, not a formality: a
// corrupted program never reaches the executor.
func TestPlayRefusesCorruptProgram(t *testing.T) {
	c, err := cluster.Homogeneous(topology.TransportRDMA, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	env, err := backend.NewEnv(c, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
		Primitive: strategy.AllReduce, Bytes: 1 << 20, Root: -1, M: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, err := ir.Lower(res.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the proof artefact: drop the first transfer op.
	for i, op := range low.Program.Ops {
		if op.Kind == ir.OpSend {
			low.Program.Ops = append(low.Program.Ops[:i:i], low.Program.Ops[i+1:]...)
			break
		}
	}
	ran := false
	err = low.Play(env.Exec, collective.Op{
		Mode:   payload.Phantom,
		OnDone: func(collective.Result) { ran = true },
	})
	if err == nil {
		t.Fatal("Play accepted a corrupted program")
	}
	env.Engine.Run()
	if ran {
		t.Fatal("executor ran despite a failed verification")
	}
}

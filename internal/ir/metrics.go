package ir

import (
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
)

// RecordVerify counts one verifier decision in
// adapcc_ir_verify_total{result="accept"|"reject"}. A nil registry is a
// no-op, matching the repo-wide metrics convention.
func RecordVerify(reg *metrics.Registry, now sim.Time, err error) {
	if reg == nil {
		return
	}
	result := "accept"
	if err != nil {
		result = "reject"
	}
	reg.Counter("adapcc_ir_verify_total",
		"IR verifier decisions on lowered collective schedules.",
		"result", result).Inc(now)
}

package ir

import "testing"

// FuzzIRVerify throws arbitrary op streams over a fixed 4-rank spec at
// the verifier. Verify must never panic, and its accept/reject decision
// must be deterministic (the error *message* may vary with map order,
// the verdict may not).
func FuzzIRVerify(f *testing.F) {
	// Seed with encodings of real schedules so the fuzzer starts near the
	// interesting accept/reject boundary.
	seedRanks := []int{0, 1, 2, 3}
	for _, build := range []func() (*Program, error){
		func() (*Program, error) { return RingAllReduce(seedRanks) },
		func() (*Program, error) { return RingReduceScatter(seedRanks) },
		func() (*Program, error) { return PairwiseAlltoAll(seedRanks) },
		func() (*Program, error) { return BinomialTreeBroadcast(seedRanks, 0) },
	} {
		p, err := build()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeOps(p))
	}
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 0, 1, 0, 0, 2, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)
		if p == nil {
			return
		}
		err1 := Verify(p)
		err2 := Verify(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdict not deterministic: %v vs %v", err1, err2)
		}
		_ = p.Stats()
	})
}

// decodeProgram maps a byte stream onto a program over ranks {0,1,2,3}.
// The first byte selects the collective; each following 5-byte group is
// one op. The chunk table is fixed per collective so the decoder always
// produces a structurally coverable spec.
func decodeProgram(data []byte) *Program {
	if len(data) == 0 {
		return nil
	}
	ranks := []int{0, 1, 2, 3}
	p := &Program{
		Name:       "fuzz",
		Collective: Collective(1 + int(data[0])%6),
		Ranks:      ranks,
		Root:       -1,
	}
	switch p.Collective {
	case Broadcast, Reduce:
		p.Root = int(data[0]/8) % 4
		p.Chunks = []Chunk{UnshardedChunk(), UnshardedChunk()}
	case AllReduce:
		p.Chunks = []Chunk{UnshardedChunk(), UnshardedChunk()}
	case ReduceScatter, AllGather:
		for i := 0; i < 4; i++ {
			p.Chunks = append(p.Chunks, ShardChunk(i))
		}
	case AlltoAll:
		for _, s := range ranks {
			for _, d := range ranks {
				p.Chunks = append(p.Chunks, PairChunk(s, d))
			}
		}
	}
	for b := data[1:]; len(b) >= 5; b = b[5:] {
		kind := Kind(1 + int(b[0])%4)
		rank := int(b[1]) % 4
		peer := int(b[2])%5 - 1 // -1..3: lets the fuzzer hit the copy-peer rule
		if kind == OpCopy {
			peer = int(b[2])%2*5 - 1 // usually -1, sometimes invalid 4
			if peer == 4 {
				peer = 1
			}
		}
		p.Ops = append(p.Ops, Op{
			Kind:  kind,
			Rank:  rank,
			Peer:  peer,
			Chunk: int(b[3]) % len(p.Chunks),
			Step:  int(b[4]) % 8,
		})
	}
	return p
}

// encodeOps inverts decodeProgram for the seed schedules (collective
// byte, then 5 bytes per op), so real accepting programs enter the
// corpus.
func encodeOps(p *Program) []byte {
	first := byte(int(p.Collective) - 1)
	if p.Root >= 0 {
		// decodeProgram derives the root from data[0]/8; encode it back.
		for b := 0; b < 256; b++ {
			if 1+b%6 == int(p.Collective) && (b/8)%4 == p.Root {
				first = byte(b)
				break
			}
		}
	}
	out := []byte{first}
	for _, op := range p.Ops {
		peer := byte(op.Peer + 1)
		if op.Kind == OpCopy {
			peer = 0
		}
		out = append(out, byte(int(op.Kind)-1), byte(op.Rank), peer, byte(op.Chunk), byte(op.Step))
	}
	return out
}

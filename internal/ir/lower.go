package ir

import (
	"fmt"

	"adapcc/internal/strategy"
)

// FromStrategy lowers a strategy (the synthesizer's or a baseline's
// routed-flow plan) into a verifiable IR program. Lowering is purely
// logical: it follows each sub-collective's flow graph rank-to-rank and
// ignores the routed intermediate hops, which affect timing but not which
// rank ends up holding which data.
//
// Reduce and Broadcast strategies must share one root across all
// sub-collectives; multi-root assemblies lower through
// ReduceScatterFromStrategy / AllGatherFromStrategy instead.
func FromStrategy(st *strategy.Strategy) (*Program, error) {
	if st == nil || len(st.SubCollectives) == 0 {
		return nil, fmt.Errorf("%w: empty strategy", ErrProgram)
	}
	ranks := st.Participants()
	p := &Program{
		Name:  fmt.Sprintf("%s/%dB", st.Primitive, st.TotalBytes),
		Ranks: ranks,
		Root:  -1,
	}
	switch st.Primitive {
	case strategy.Reduce, strategy.Broadcast:
		root := st.SubCollectives[0].Root
		for i := range st.SubCollectives {
			if st.SubCollectives[i].Root != root {
				return nil, fmt.Errorf("%w: %s strategy mixes roots %d and %d (use the multi-root lowerings)",
					ErrProgram, st.Primitive, root, st.SubCollectives[i].Root)
			}
		}
		p.Root = root
		if st.Primitive == strategy.Reduce {
			p.Collective = Reduce
		} else {
			p.Collective = Broadcast
		}
	case strategy.AllReduce:
		p.Collective = AllReduce
	case strategy.AlltoAll:
		p.Collective = AlltoAll
	default:
		return nil, fmt.Errorf("%w: unknown primitive %d", ErrProgram, int(st.Primitive))
	}

	for i := range st.SubCollectives {
		sc := &st.SubCollectives[i]
		var err error
		switch p.Collective {
		case Reduce:
			err = lowerReduceSub(p, sc, func(int) Chunk { return UnshardedChunk() }, false)
		case AllReduce:
			err = lowerReduceSub(p, sc, func(int) Chunk { return UnshardedChunk() }, true)
		case Broadcast:
			err = lowerBroadcastSub(p, sc, func(int) Chunk { return UnshardedChunk() })
		case AlltoAll:
			err = lowerAlltoAllSub(p, sc)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: sub-collective %d: %v", ErrProgram, sc.ID, err)
		}
	}
	return p, nil
}

// ReduceScatterFromStrategy lowers a multi-root Reduce assembly — one or
// more in-trees rooted at every participant — into a first-class
// ReduceScatter program: the chunks of a sub-collective rooted at
// Ranks[i] form shard i.
func ReduceScatterFromStrategy(st *strategy.Strategy) (*Program, error) {
	return fromMultiRoot(st, strategy.Reduce, ReduceScatter)
}

// AllGatherFromStrategy lowers a multi-root Broadcast assembly — one or
// more out-trees rooted at every participant — into a first-class
// AllGather program: the chunks of a sub-collective rooted at Ranks[i]
// form shard i.
func AllGatherFromStrategy(st *strategy.Strategy) (*Program, error) {
	return fromMultiRoot(st, strategy.Broadcast, AllGather)
}

func fromMultiRoot(st *strategy.Strategy, want strategy.Primitive, coll Collective) (*Program, error) {
	if st == nil || len(st.SubCollectives) == 0 {
		return nil, fmt.Errorf("%w: empty strategy", ErrProgram)
	}
	if st.Primitive != want {
		return nil, fmt.Errorf("%w: %s lowering needs a %s strategy, got %s",
			ErrProgram, coll, want, st.Primitive)
	}
	ranks := st.Participants()
	p := &Program{
		Name:       fmt.Sprintf("%s/%dB", coll, st.TotalBytes),
		Collective: coll,
		Ranks:      ranks,
		Root:       -1,
	}
	rooted := make(map[int]bool)
	for i := range st.SubCollectives {
		sc := &st.SubCollectives[i]
		shard := p.rankIndex(sc.Root)
		if shard < 0 {
			return nil, fmt.Errorf("%w: sub-collective %d root %d is not a participant", ErrProgram, sc.ID, sc.Root)
		}
		rooted[shard] = true
		mk := func(int) Chunk { return ShardChunk(shard) }
		var err error
		if want == strategy.Reduce {
			err = lowerReduceSub(p, sc, mk, false)
		} else {
			err = lowerBroadcastSub(p, sc, mk)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: sub-collective %d: %v", ErrProgram, sc.ID, err)
		}
	}
	for i := range ranks {
		if !rooted[i] {
			return nil, fmt.Errorf("%w: %s assembly has no sub-collective rooted at rank %d",
				ErrProgram, coll, ranks[i])
		}
	}
	return p, nil
}

// lowerReduceSub emits the up-phase of one in-tree: every non-root rank
// sends its partial to its parent, which reduces it in. A leaf sends at
// step 0; an interior rank sends one step after its last child's send has
// committed. When down is set (AllReduce), the reduced result then
// pipelines back down the reversed tree via Send/Recv.
func lowerReduceSub(p *Program, sc *strategy.SubCollective, mk func(chunkInSub int) Chunk, down bool) error {
	parent, err := treeEdges(sc, false)
	if err != nil {
		return err
	}
	root := sc.Root
	sendStep, err := reduceSendSteps(parent, root)
	if err != nil {
		return err
	}
	base := len(p.Chunks)
	nchunks := sc.Chunks()
	for ci := 0; ci < nchunks; ci++ {
		p.Chunks = append(p.Chunks, mk(ci))
	}

	for ci := 0; ci < nchunks; ci++ {
		c := base + ci
		for r, par := range parent {
			s := sendStep[r]
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: r, Peer: par, Chunk: c, Step: s},
				Op{Kind: OpReduce, Rank: par, Peer: r, Chunk: c, Step: s},
			)
		}
	}

	if down {
		// The root's last reduce commits at the end of step F-1.
		finish := 0
		for r, par := range parent {
			if par == root && sendStep[r]+1 > finish {
				finish = sendStep[r] + 1
			}
		}
		depth, err := treeDepths(parent, root)
		if err != nil {
			return err
		}
		for ci := 0; ci < nchunks; ci++ {
			c := base + ci
			for r, par := range parent {
				s := finish + depth[par]
				p.Ops = append(p.Ops,
					Op{Kind: OpSend, Rank: par, Peer: r, Chunk: c, Step: s},
					Op{Kind: OpRecv, Rank: r, Peer: par, Chunk: c, Step: s},
				)
			}
		}
	}
	return nil
}

// lowerBroadcastSub emits one out-tree: the root copies its own data at
// step 0, and each rank forwards to its children one step after its own
// receive has committed.
func lowerBroadcastSub(p *Program, sc *strategy.SubCollective, mk func(chunkInSub int) Chunk) error {
	source, err := treeEdges(sc, true)
	if err != nil {
		return err
	}
	root := sc.Root
	depth, err := treeDepths(source, root)
	if err != nil {
		return err
	}
	base := len(p.Chunks)
	nchunks := sc.Chunks()
	for ci := 0; ci < nchunks; ci++ {
		p.Chunks = append(p.Chunks, mk(ci))
	}
	for ci := 0; ci < nchunks; ci++ {
		c := base + ci
		p.Ops = append(p.Ops, Op{Kind: OpCopy, Rank: root, Peer: -1, Chunk: c, Step: 0})
		for r, src := range source {
			s := depth[src]
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: src, Peer: r, Chunk: c, Step: s},
				Op{Kind: OpRecv, Rank: r, Peer: src, Chunk: c, Step: s},
			)
		}
	}
	return nil
}

// lowerAlltoAllSub emits one chunk per ordered rank pair: off-diagonal
// blocks travel in a single exchange step, diagonal blocks stay local as
// a Copy.
func lowerAlltoAllSub(p *Program, sc *strategy.SubCollective) error {
	if len(sc.Flows) == 0 {
		return fmt.Errorf("no flows")
	}
	seen := make(map[[2]int]bool)
	for _, f := range sc.Flows {
		if f.SrcRank == f.DstRank {
			return fmt.Errorf("flow %d is a self-send", f.ID)
		}
		key := [2]int{f.SrcRank, f.DstRank}
		if seen[key] {
			return fmt.Errorf("duplicate flow for pair %v", key)
		}
		seen[key] = true
		c := len(p.Chunks)
		p.Chunks = append(p.Chunks, PairChunk(f.SrcRank, f.DstRank))
		p.Ops = append(p.Ops,
			Op{Kind: OpSend, Rank: f.SrcRank, Peer: f.DstRank, Chunk: c, Step: 0},
			Op{Kind: OpRecv, Rank: f.DstRank, Peer: f.SrcRank, Chunk: c, Step: 0},
		)
	}
	for _, r := range p.Ranks {
		c := len(p.Chunks)
		p.Chunks = append(p.Chunks, PairChunk(r, r))
		p.Ops = append(p.Ops, Op{Kind: OpCopy, Rank: r, Peer: -1, Chunk: c, Step: 0})
	}
	return nil
}

// treeEdges extracts the rank-level tree from a sub-collective's flows.
// For an in-tree (reversed=false) it maps child → parent (each non-root
// rank originates exactly one flow); for an out-tree (reversed=true) it
// maps child → source (each non-root rank terminates exactly one flow).
func treeEdges(sc *strategy.SubCollective, reversed bool) (map[int]int, error) {
	edges := make(map[int]int, len(sc.Flows))
	for _, f := range sc.Flows {
		child, other := f.SrcRank, f.DstRank
		if reversed {
			child, other = f.DstRank, f.SrcRank
		}
		if child == sc.Root {
			return nil, fmt.Errorf("flow %d puts root %d on the leaf side", f.ID, sc.Root)
		}
		if _, dup := edges[child]; dup {
			return nil, fmt.Errorf("rank %d appears in more than one tree edge", child)
		}
		edges[child] = other
	}
	return edges, nil
}

// reduceSendSteps assigns each non-root rank the step at which it sends
// up-tree: 0 for leaves, 1 + max(children) otherwise.
func reduceSendSteps(parent map[int]int, root int) (map[int]int, error) {
	children := make(map[int][]int)
	for c, p := range parent {
		children[p] = append(children[p], c)
	}
	steps := make(map[int]int, len(parent))
	var visit func(r int, trail map[int]bool) (int, error)
	visit = func(r int, trail map[int]bool) (int, error) {
		if s, ok := steps[r]; ok {
			return s, nil
		}
		if trail[r] {
			return 0, fmt.Errorf("aggregation cycle through rank %d", r)
		}
		trail[r] = true
		s := 0
		for _, c := range children[r] {
			cs, err := visit(c, trail)
			if err != nil {
				return 0, err
			}
			if cs+1 > s {
				s = cs + 1
			}
		}
		delete(trail, r)
		steps[r] = s
		return s, nil
	}
	for r := range parent {
		if _, err := visit(r, map[int]bool{}); err != nil {
			return nil, err
		}
	}
	return steps, nil
}

// treeDepths returns each rank's hop distance from the root following the
// child → parent/source map; the root has depth 0.
func treeDepths(up map[int]int, root int) (map[int]int, error) {
	depths := map[int]int{root: 0}
	var visit func(r int, trail map[int]bool) (int, error)
	visit = func(r int, trail map[int]bool) (int, error) {
		if d, ok := depths[r]; ok {
			return d, nil
		}
		if trail[r] {
			return 0, fmt.Errorf("tree cycle through rank %d", r)
		}
		trail[r] = true
		p, ok := up[r]
		if !ok {
			return 0, fmt.Errorf("rank %d is disconnected from root %d", r, root)
		}
		pd, err := visit(p, trail)
		if err != nil {
			return 0, err
		}
		delete(trail, r)
		depths[r] = pd + 1
		return pd + 1, nil
	}
	for r := range up {
		if _, err := visit(r, map[int]bool{}); err != nil {
			return nil, err
		}
	}
	return depths, nil
}

package ir

import "fmt"

// Hand-written reference schedules. These are the textbook algorithms
// expressed directly in the IR — both a seed corpus for the verifier's
// tests and programs users can adapt for custom collectives.

// RingReduceScatter is the classic n-1 step ring: at step s, rank index r
// sends chunk (r-s-1 mod n) to its ring successor, which reduces it into
// its own partial. After n-1 steps rank i holds the fully reduced shard i.
func RingReduceScatter(ranks []int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: ring needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("ring-reducescatter/%d", n),
		Collective: ReduceScatter,
		Ranks:      sortedCopy(ranks),
		Root:       -1,
	}
	for i := 0; i < n; i++ {
		p.Chunks = append(p.Chunks, ShardChunk(i))
	}
	for s := 0; s < n-1; s++ {
		for r := 0; r < n; r++ {
			c := ((r-s-1)%n + n) % n
			next := (r + 1) % n
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: p.Ranks[r], Peer: p.Ranks[next], Chunk: c, Step: s},
				Op{Kind: OpReduce, Rank: p.Ranks[next], Peer: p.Ranks[r], Chunk: c, Step: s},
			)
		}
	}
	return p, nil
}

// RingAllGather is the n-1 step ring: at step s, rank index r forwards
// chunk (r-s mod n) — its own shard first, then whatever just arrived —
// to its ring successor.
func RingAllGather(ranks []int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: ring needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("ring-allgather/%d", n),
		Collective: AllGather,
		Ranks:      sortedCopy(ranks),
		Root:       -1,
	}
	for i := 0; i < n; i++ {
		p.Chunks = append(p.Chunks, ShardChunk(i))
	}
	for s := 0; s < n-1; s++ {
		for r := 0; r < n; r++ {
			c := ((r-s)%n + n) % n
			next := (r + 1) % n
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: p.Ranks[r], Peer: p.Ranks[next], Chunk: c, Step: s},
				Op{Kind: OpRecv, Rank: p.Ranks[next], Peer: p.Ranks[r], Chunk: c, Step: s},
			)
		}
	}
	return p, nil
}

// RingAllReduce composes the two ring phases into the bandwidth-optimal
// 2(n-1)-step AllReduce: reduce-scatter for steps [0, n-1), then allgather
// of the reduced shards for steps [n-1, 2n-2).
func RingAllReduce(ranks []int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: ring needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("ring-allreduce/%d", n),
		Collective: AllReduce,
		Ranks:      sortedCopy(ranks),
		Root:       -1,
	}
	for i := 0; i < n; i++ {
		p.Chunks = append(p.Chunks, UnshardedChunk())
	}
	for s := 0; s < n-1; s++ {
		for r := 0; r < n; r++ {
			c := ((r-s-1)%n + n) % n
			next := (r + 1) % n
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: p.Ranks[r], Peer: p.Ranks[next], Chunk: c, Step: s},
				Op{Kind: OpReduce, Rank: p.Ranks[next], Peer: p.Ranks[r], Chunk: c, Step: s},
			)
		}
	}
	// After the first phase rank index r holds the full sum of chunk r.
	for t := 0; t < n-1; t++ {
		s := n - 1 + t
		for r := 0; r < n; r++ {
			c := ((r-t)%n + n) % n
			next := (r + 1) % n
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: p.Ranks[r], Peer: p.Ranks[next], Chunk: c, Step: s},
				Op{Kind: OpRecv, Rank: p.Ranks[next], Peer: p.Ranks[r], Chunk: c, Step: s},
			)
		}
	}
	return p, nil
}

// PairwiseAlltoAll exchanges every off-diagonal block directly: at step
// s-1 (s in [1, n)), rank index i sends its block for rank (i+s) mod n.
// Diagonal blocks stay local.
func PairwiseAlltoAll(ranks []int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: alltoall needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("pairwise-alltoall/%d", n),
		Collective: AlltoAll,
		Ranks:      sortedCopy(ranks),
		Root:       -1,
	}
	for i := 0; i < n; i++ {
		c := len(p.Chunks)
		p.Chunks = append(p.Chunks, PairChunk(p.Ranks[i], p.Ranks[i]))
		p.Ops = append(p.Ops, Op{Kind: OpCopy, Rank: p.Ranks[i], Peer: -1, Chunk: c, Step: 0})
	}
	for s := 1; s < n; s++ {
		for i := 0; i < n; i++ {
			j := (i + s) % n
			c := len(p.Chunks)
			p.Chunks = append(p.Chunks, PairChunk(p.Ranks[i], p.Ranks[j]))
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: p.Ranks[i], Peer: p.Ranks[j], Chunk: c, Step: s - 1},
				Op{Kind: OpRecv, Rank: p.Ranks[j], Peer: p.Ranks[i], Chunk: c, Step: s - 1},
			)
		}
	}
	return p, nil
}

// BinomialTreeBroadcast doubles the holder set each step: at step s every
// relative index below 2^s that holds the data sends to index + 2^s.
// Relative index 0 is the root.
func BinomialTreeBroadcast(ranks []int, root int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: broadcast needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("binomial-broadcast/%d", n),
		Collective: Broadcast,
		Ranks:      sortedCopy(ranks),
		Root:       root,
	}
	ri := p.rankIndex(root)
	if ri < 0 {
		return nil, fmt.Errorf("%w: root %d not in ranks", ErrProgram, root)
	}
	p.Chunks = append(p.Chunks, UnshardedChunk())
	// rel maps relative index → rank value, root first.
	rel := relOrder(p.Ranks, ri)
	p.Ops = append(p.Ops, Op{Kind: OpCopy, Rank: root, Peer: -1, Chunk: 0, Step: 0})
	for s, span := 0, 1; span < n; s, span = s+1, span*2 {
		for r := 0; r < span && r+span < n; r++ {
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: rel[r], Peer: rel[r+span], Chunk: 0, Step: s},
				Op{Kind: OpRecv, Rank: rel[r+span], Peer: rel[r], Chunk: 0, Step: s},
			)
		}
	}
	return p, nil
}

// BinomialTreeReduce is the mirror image: the holder set halves each
// step until relative index 0 — the root — holds the full sum.
func BinomialTreeReduce(ranks []int, root int) (*Program, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("%w: reduce needs at least 2 ranks", ErrProgram)
	}
	p := &Program{
		Name:       fmt.Sprintf("binomial-reduce/%d", n),
		Collective: Reduce,
		Ranks:      sortedCopy(ranks),
		Root:       root,
	}
	ri := p.rankIndex(root)
	if ri < 0 {
		return nil, fmt.Errorf("%w: root %d not in ranks", ErrProgram, root)
	}
	p.Chunks = append(p.Chunks, UnshardedChunk())
	rel := relOrder(p.Ranks, ri)
	spans := []int{}
	for span := 1; span < n; span *= 2 {
		spans = append(spans, span)
	}
	for t := len(spans) - 1; t >= 0; t-- {
		span := spans[t]
		s := len(spans) - 1 - t
		for r := 0; r < span && r+span < n; r++ {
			p.Ops = append(p.Ops,
				Op{Kind: OpSend, Rank: rel[r+span], Peer: rel[r], Chunk: 0, Step: s},
				Op{Kind: OpReduce, Rank: rel[r], Peer: rel[r+span], Chunk: 0, Step: s},
			)
		}
	}
	return p, nil
}

// relOrder lists rank values in relative order: the root first, then the
// remaining ranks rotated so the ordering is deterministic.
func relOrder(sorted []int, rootIdx int) []int {
	n := len(sorted)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sorted[(rootIdx+i)%n])
	}
	return out
}

func sortedCopy(ranks []int) []int {
	out := make([]int, len(ranks))
	copy(out, ranks)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package scale

import (
	"fmt"
	"time"

	"adapcc/internal/sim"
)

// iterState is the multi-iteration barrier of a sweep: each domain counts
// the final-value writes of its own ranks, verifies its rows against the
// closed-form reduction when the count drains, and reports to domain 0,
// which closes the iteration, records its duration and broadcasts the next
// round (or, after the last round, the shutdown that lets the congestion
// detectors stop ticking so the engines drain).
//
// The barrier is deliberately one-way — domains report up, domain 0 fans
// out — and every cross-domain signal travels as a lookahead-delayed Post.
// A domain's first chunk of iteration k+1 therefore always arrives at its
// receiver strictly after that receiver's own startIter: the chunk pays the
// cross edge's latency (≥ lookahead) plus at least one positive intra-domain
// hop on top of the sender's start time, while the start broadcast paid
// exactly one lookahead. The only out-of-iteration traffic that can exist
// is a resilient-mode duplicate from a finished round, which deliver drops.
type iterState struct {
	total int
	// cur / remain / quota are per-domain, each entry owned by its domain:
	// the running iteration number, the final writes outstanding in it, and
	// the per-iteration write budget (ranks in the domain × segments).
	cur    []int
	remain []int
	quota  []int
	// domRanks[d] lists the global ranks homed in domain d.
	domRanks [][]int
	// errs[d] is domain d's first verification failure, if any.
	errs []error
	// done / lastMark / durs are domain 0's round bookkeeping.
	done     int
	lastMark sim.Time
	durs     []time.Duration
}

func newIterState(s *sweep, total int) *iterState {
	doms := s.part.Domains
	it := &iterState{
		total:    total,
		cur:      make([]int, doms),
		remain:   make([]int, doms),
		quota:    make([]int, doms),
		domRanks: make([][]int, doms),
		errs:     make([]error, doms),
	}
	for r := range s.vals {
		d := s.part.RankDomain[r]
		it.domRanks[d] = append(it.domRanks[d], r)
	}
	for d := 0; d < doms; d++ {
		it.quota[d] = len(it.domRanks[d]) * s.m
		it.remain[d] = it.quota[d]
	}
	return it
}

// iterOf is the iteration tag for chunks rank r injects right now.
func (s *sweep) iterOf(r int) int {
	if s.it == nil {
		return 0
	}
	return s.it.cur[s.part.RankDomain[r]]
}

// initValIter extends initVal to later iterations; iteration 0 is bit-for-
// bit the classic synthetic data, so single-iteration sweeps are unchanged.
func (s *sweep) initValIter(rank, seg, iter int) uint64 {
	v := s.initVal(rank, seg)
	if iter > 0 {
		v = mix64(v ^ uint64(iter)*0x9e3779b97f4a7c15)
	}
	return v
}

// lastIter is the iteration whose values finish verifies.
func (s *sweep) lastIter() int {
	if s.it == nil {
		return 0
	}
	return s.it.total - 1
}

// final records one final-value write for rank r's current iteration. Runs
// in r's home domain; when the domain's budget drains, the domain verifies
// itself and reports to domain 0.
func (s *sweep) final(r int) {
	it := s.it
	if it == nil {
		return
	}
	d := s.part.RankDomain[r]
	it.remain[d]--
	if it.remain[d] > 0 {
		return
	}
	s.verifyDomain(d)
	if d == 0 {
		s.domainDone()
		return
	}
	s.sh.Parallel().Post(d, 0, s.part.Lookahead, s.domainDone)
}

// verifyDomain checks every row the domain owns against the closed-form
// reduction of the running iteration, inline at the barrier — a corrupt
// chunk is pinned to the iteration that produced it, not discovered after
// the last round overwrote the evidence.
func (s *sweep) verifyDomain(d int) {
	it := s.it
	if it.errs[d] != nil {
		return
	}
	iter := it.cur[d]
	expect := make([]uint64, s.m)
	for seg := range expect {
		var sum uint64
		for r := range s.vals {
			sum += s.initValIter(r, seg, iter)
		}
		expect[seg] = sum
	}
	for _, r := range it.domRanks[d] {
		for seg, v := range s.vals[r] {
			if v != expect[seg] {
				it.errs[d] = fmt.Errorf("scale: iteration %d rank %d segment %d = %#x, want %#x (collective incomplete or corrupt)",
					iter, r, seg, v, expect[seg])
				return
			}
		}
	}
}

// domainDone runs on domain 0's engine, once per domain per iteration.
func (s *sweep) domainDone() {
	it := s.it
	it.done++
	if it.done < s.part.Domains {
		return
	}
	it.done = 0
	now := s.sh.Engine(0).Now()
	it.durs = append(it.durs, time.Duration(now-it.lastMark))
	it.lastMark = now
	next := it.cur[0] + 1
	if next >= it.total {
		s.shutdown()
		return
	}
	for d := 0; d < s.part.Domains; d++ {
		d := d
		if d == 0 {
			s.startIter(0, next)
			continue
		}
		s.sh.Parallel().Post(0, d, s.part.Lookahead, func() { s.startIter(d, next) })
	}
}

// startIter resets domain d's ranks for the next round and re-injects their
// first chunks. Runs in domain d.
func (s *sweep) startIter(d, next int) {
	it := s.it
	it.cur[d] = next
	it.remain[d] = it.quota[d]
	for _, r := range it.domRanks[d] {
		row := s.vals[r]
		for seg := range row {
			row[seg] = s.initValIter(r, seg, next)
		}
		s.p1done[r] = false
		s.hasSt[r] = false
		if s.res != nil {
			s.res.resetSeen(r)
		}
	}
	for _, r := range it.domRanks[d] {
		s.start(r)
	}
}

// shutdown runs on domain 0 after the last iteration: fan the stop signal
// out so every domain's congestion detector quits its tick chain and the
// engines can drain.
func (s *sweep) shutdown() { s.stopDetectors(0) }

// stopDetectors stops every domain's congestion detector from domain
// `from` — at the end of the last iteration, or the moment a guarded chunk
// gives up (the barrier can never fill then, and detectors ticking forever
// would keep Run from returning the failure). Stops are idempotent, so
// concurrent give-ups at worst repeat them.
func (s *sweep) stopDetectors(from int) {
	if s.cong == nil {
		return
	}
	for d := 0; d < s.part.Domains; d++ {
		d := d
		if d == from {
			s.cong.mons[d].Stop()
			continue
		}
		s.sh.Parallel().Post(from, d, s.part.Lookahead, func() { s.cong.mons[d].Stop() })
	}
}

// iterError folds the per-domain verification failures, or nil.
func (it *iterState) iterError() error {
	if it == nil {
		return nil
	}
	for _, err := range it.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

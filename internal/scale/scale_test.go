package scale

import (
	"testing"

	"adapcc/internal/metrics"
	"adapcc/internal/topology"
)

func buildTopo(t *testing.T, spec topology.Spec) *topology.Topo {
	t.Helper()
	topo, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestSweepEquivalence is the scale-level determinism property: the same
// AllReduce produces the identical virtual completion time and data
// checksum whether it runs monolithically (single global event order),
// partitioned with one worker, or partitioned with several workers — and
// the two partitioned runs are fully identical, event counts included.
func TestSweepEquivalence(t *testing.T) {
	for _, spec := range []topology.Spec{
		topology.RailSpec{Groups: 4, Servers: 2, Rails: 2},
		topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2},
		topology.MultiNICSpec{Servers: 4, GPUs: 2, NICs: 2, Group: 2},
	} {
		topo := buildTopo(t, spec)
		for seed := int64(0); seed < 3; seed++ {
			mono, err := Run(Options{Topo: topo, Monolithic: true, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: monolithic: %v", spec.Name(), seed, err)
			}
			p1, err := Run(Options{Topo: topo, Workers: 1, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: partitioned: %v", spec.Name(), seed, err)
			}
			p4, err := Run(Options{Topo: topo, Workers: 4, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: partitioned 4w: %v", spec.Name(), seed, err)
			}
			if p1.Elapsed != mono.Elapsed || p1.Checksum != mono.Checksum {
				t.Errorf("%s seed %d: partitioned (%v, %#x) != monolithic (%v, %#x)",
					spec.Name(), seed, p1.Elapsed, p1.Checksum, mono.Elapsed, mono.Checksum)
			}
			if p4.Elapsed != p1.Elapsed || p4.Checksum != p1.Checksum || p4.Fired != p1.Fired || p4.Windows != p1.Windows {
				t.Errorf("%s seed %d: 4-worker (%v, %#x, %d ev) != 1-worker (%v, %#x, %d ev)",
					spec.Name(), seed, p4.Elapsed, p4.Checksum, p4.Fired, p1.Elapsed, p1.Checksum, p1.Fired)
			}
			if mono.Domains != 1 || p1.Domains != topo.Domains {
				t.Errorf("%s seed %d: domains mono=%d part=%d", spec.Name(), seed, mono.Domains, p1.Domains)
			}
			if p1.Elapsed <= 0 || p1.Fired == 0 {
				t.Errorf("%s seed %d: degenerate sweep: %+v", spec.Name(), seed, p1)
			}
		}
	}
}

// TestSweepMetrics checks the per-domain engine stats surface through the
// metrics registry with one series per domain.
func TestSweepMetrics(t *testing.T) {
	topo := buildTopo(t, topology.RailSpec{Groups: 2, Servers: 2, Rails: 2})
	reg := metrics.New()
	res, err := Run(Options{Topo: topo, Workers: 2, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	fired, ok := snap.Family("adapcc_engine_events_fired_total")
	if !ok {
		t.Fatal("no adapcc_engine_events_fired_total family")
	}
	if len(fired.Series) != topo.Domains {
		t.Fatalf("%d fired series, want %d", len(fired.Series), topo.Domains)
	}
	if got := uint64(fired.Total()); got != res.Fired {
		t.Errorf("metrics count %d events, result says %d", got, res.Fired)
	}
	for _, name := range []string{
		"adapcc_engine_lookahead_stalls_total",
		"adapcc_engine_queue_depth_max",
		"adapcc_engine_windows_total",
		"adapcc_engine_speedup",
	} {
		if _, ok := snap.Family(name); !ok {
			t.Errorf("missing metric family %s", name)
		}
	}
}

// TestSweepSegBytesScaling sanity-checks the physics: quadrupling the
// segment size strictly increases the virtual completion time.
func TestSweepSegBytesScaling(t *testing.T) {
	topo := buildTopo(t, topology.RailSpec{Groups: 2, Servers: 2, Rails: 2})
	small, err := Run(Options{Topo: topo, Seed: 1, SegBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Options{Topo: topo, Seed: 1, SegBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if big.Elapsed <= small.Elapsed {
		t.Errorf("4x segment size did not increase elapsed time: %v vs %v", big.Elapsed, small.Elapsed)
	}
}

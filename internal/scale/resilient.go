package scale

import (
	"fmt"
	"strconv"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/fabric"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Resilience arms the sender-side recovery machinery of the sweep: every
// logical chunk transfer is guarded by a deadline scaled off its path's
// nominal α–β cost, an expired deadline aborts the stuck transfer (if it
// still occupies its first hop), scans the sender-owned path edges for dead
// links, blacklists and re-routes around them, and retransmits with bounded
// exponential backoff. A per-domain progress watchdog flags intervals with
// outstanding guards but no deliveries. All recovery state — blacklists,
// dedup bitsets, counters, healers — is partitioned by domain and touched
// only from that domain's events, so a faulted sweep replays bit-identically
// for any worker count, exactly like the fault-free one.
type Resilience struct {
	// DeadlineMult × the path's nominal transfer time is the per-chunk
	// delivery deadline (default 16), floored at DeadlineFloor (default
	// 1ms) and doubled per retry. The floor must comfortably exceed the
	// partition lookahead so cross-domain acks beat the deadline.
	DeadlineMult  float64
	DeadlineFloor time.Duration
	// MaxRetries bounds retransmissions per logical chunk (default 4);
	// exhausting it records a gave-up failure and fails the sweep.
	MaxRetries int
	// Backoff is the pre-retransmit delay (default 100µs), doubled per
	// attempt.
	Backoff time.Duration
	// StallTimeout is the progress-watchdog interval (default 5ms): a
	// domain with outstanding guards and no deliveries for a full interval
	// records a stall warning.
	StallTimeout time.Duration
	// BlacklistFor is how long a dead edge stays blacklisted when healing
	// is disabled (default 25ms) — time-based re-admission; the next
	// deadline re-blacklists it if it is still dead. Suspected foreign
	// edges always expire on this clock.
	BlacklistFor time.Duration
	// Heal, when non-nil, upgrades re-admission from the BlacklistFor
	// timer to probing: each domain runs its own health.Monitor over its
	// fabric shard, blacklisted owned edges are watched, and a promotion
	// (probe-verified recovery, re-profiled α–β) lifts the blacklist for
	// just that domain. Cross-domain boundary links are probed over their
	// serialization leg, so even their healing stays domain-local.
	Heal *health.Options
}

func (r Resilience) withDefaults() Resilience {
	if r.DeadlineMult <= 0 {
		r.DeadlineMult = 16
	}
	if r.DeadlineFloor <= 0 {
		r.DeadlineFloor = time.Millisecond
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 4
	}
	if r.Backoff <= 0 {
		r.Backoff = 100 * time.Microsecond
	}
	if r.StallTimeout <= 0 {
		r.StallTimeout = 5 * time.Millisecond
	}
	if r.BlacklistFor <= 0 {
		r.BlacklistFor = 25 * time.Millisecond
	}
	return r
}

// RecoveryStats is the fold of the per-domain recovery tallies of one
// resilient sweep. All fields are comparable, so two runs' stats can be
// checked for bit-identity with ==.
type RecoveryStats struct {
	// Deadlines counts guard deadlines that expired undelivered;
	// Retransmits the re-sends they triggered; Reroutes how many of those
	// took a detour around a blacklisted edge; Duplicates the late
	// original deliveries suppressed by the receiver dedup.
	Deadlines   uint64
	Retransmits uint64
	Reroutes    uint64
	Duplicates  uint64
	// GaveUp counts chunks that exhausted MaxRetries (the sweep fails).
	GaveUp uint64
	// StallWarnings counts watchdog intervals with guards outstanding but
	// zero deliveries in the domain.
	StallWarnings uint64
	// DomainLocal / Boundary count recovered deliveries by fault locality:
	// whether every edge involved was owned by the sender's domain
	// (domain_local) or the fault touched a cross-domain / foreign edge
	// (boundary). They mirror the sharded fabric's RecoveryEvents fold.
	DomainLocal uint64
	Boundary    uint64
	// Healed / Condemned count per-domain health.Monitor outcomes.
	Healed    uint64
	Condemned uint64
	// Recoveries counts recovered deliveries (= DomainLocal + Boundary);
	// TimeToRecoverMax/Sum aggregate first-deadline→delivery latencies.
	Recoveries       uint64
	TimeToRecoverMax time.Duration
	TimeToRecoverSum time.Duration
	// TimeToHealMax/Sum aggregate exclusion→re-admission latencies.
	TimeToHealMax time.Duration
	TimeToHealSum time.Duration
	// Injected is what the chaos engine actually did.
	Injected chaos.Counters
}

// blEntry is one blacklisted global edge in a domain's routing view.
type blEntry struct {
	until    sim.Time // 0 = until healed or condemned (heal mode)
	boundary bool
	watched  bool
}

// domRecovery is one domain's recovery state, owned by that domain's
// events.
type domRecovery struct {
	deliveries uint64 // non-duplicate deliveries into this domain
	pending    int    // outstanding guards whose sender lives here

	bl    map[topology.EdgeID]*blEntry
	watch map[[2]topology.NodeID][]topology.EdgeID // local pair -> blacklisted global edges
	// blFP is the XOR of edgeHash over the currently blacklisted edges —
	// the membership fingerprint of this domain's routing view. Together
	// with the congestion view's fingerprint it keys detours, the min-hop
	// detour memo: healing flaps restore a previous (blacklist, view) pair,
	// so their reroutes become map hits instead of shortest-path searches.
	// Maintained by blacklist/suspectForeign/prune/onHealed; consistent
	// only after prune ran for the current time (route's first step).
	blFP    uint64
	detours map[detourKey][]topology.NodeID

	deadlines   uint64
	retransmits uint64
	reroutes    uint64
	duplicates  uint64
	gaveUp      []string
	stalls      uint64

	ttrLocal    []time.Duration
	ttrBoundary []time.Duration
	tthLocal    []time.Duration
	tthBoundary []time.Duration
	condemned   uint64

	heal *health.Monitor

	watchArmed     bool
	lastDeliveries uint64
}

// detourKey names one memoised detour: the endpoints plus the blacklist
// and degraded-view fingerprints the avoidance ran under. The two
// fingerprints stay separate fields — XORing them together would let
// distinct (blacklist, view) set pairs collide on one key.
type detourKey struct {
	from, to topology.NodeID
	bl, view uint64
}

// edgeHash is the per-edge mixing term of the routing-view fingerprints
// (+1 keeps the zero edge ID away from splitmix64's zero fixed point).
func edgeHash(ge topology.EdgeID) uint64 { return mix64(uint64(ge) + 1) }

// wireMsg is the payload of one guarded transmission. Every field the
// receiver touches is a value copy frozen at send time; the guard pointer
// is carried opaquely and only ever dereferenced back in the sender's
// domain (directly for an intra-domain delivery, via a lookahead-delayed
// Post for a cross-domain one).
type wireMsg struct {
	c       chunk
	recv    int // receiver's global rank
	sdom    int // sender's domain
	attempt int
	g       *guard
}

// guard is the sender-side state of one logical chunk transfer.
type guard struct {
	phase, seg, hops int
	iter             int
	val              uint64
	recv             int
	dom              int // sender domain
	rdom             int // receiver domain
	path             []topology.NodeID

	attempt    int
	h          fabric.GlobalTransfer
	deadlineEv *sim.Event
	faultAt    sim.Time // first deadline expiry; 0 = clean so far
	boundary   bool     // fault locality of this guard's recovery
	delivered  bool
}

// resil hangs the recovery machinery off a sweep.
type resil struct {
	s   *sweep
	cfg Resilience
	ds  []*domRecovery
	// seen[r] is rank r's (phase, seg) delivery bitset, owned by r's home
	// domain.
	seen     [][]uint64
	seenWord int
}

func newResil(s *sweep, cfg Resilience) *resil {
	r := &resil{s: s, cfg: cfg.withDefaults()}
	r.ds = make([]*domRecovery, s.part.Domains)
	for d := range r.ds {
		r.ds[d] = &domRecovery{
			bl:      make(map[topology.EdgeID]*blEntry),
			watch:   make(map[[2]topology.NodeID][]topology.EdgeID),
			detours: make(map[detourKey][]topology.NodeID),
		}
	}
	r.seenWord = (4*s.m + 63) / 64
	r.seen = make([][]uint64, len(s.vals))
	for i := range r.seen {
		r.seen[i] = make([]uint64, r.seenWord)
	}
	return r
}

// markSeen records delivery of (recv, phase, seg) and reports whether it
// was already delivered. The (receiver, phase, segment) triple uniquely
// names a logical message of the hierarchical ring, so a bitset replaces a
// multi-megabyte map at 4096 ranks.
func (r *resil) markSeen(recv, phase, seg int) bool {
	idx := phase*r.s.m + seg
	w, b := idx/64, uint64(1)<<(idx%64)
	if r.seen[recv][w]&b != 0 {
		return true
	}
	r.seen[recv][w] |= b
	return false
}

// resetSeen clears rank r's delivery bitset at an iteration barrier. Runs
// in r's home domain, which owns the bitset row.
func (r *resil) resetSeen(rank int) {
	row := r.seen[rank]
	for i := range row {
		row[i] = 0
	}
}

// nominal is the contention-free delivery time of size bytes store-and-
// forwarded along path: Σ per hop (α + size/bandwidth).
func (r *resil) nominal(path []topology.NodeID) time.Duration {
	g := r.s.part.Graph
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		ge, ok := g.EdgeBetween(path[i], path[i+1])
		if !ok {
			continue
		}
		e := g.Edge(ge)
		total += e.Alpha
		if e.BandwidthBps > 0 {
			total += time.Duration(float64(r.s.seg) / e.BandwidthBps * 1e9)
		}
	}
	return total
}

// send is the guarded counterpart of sweep.send: it wraps the chunk in a
// guard, detours around already-blacklisted edges, transmits, and arms the
// delivery deadline. Runs in the sender's domain.
func (r *resil) send(path []topology.NodeID, c *chunk) {
	s := r.s
	last := path[len(path)-1]
	g := &guard{
		phase: c.phase, seg: c.seg, hops: c.hops, iter: c.iter, val: c.val,
		recv: s.part.Graph.Node(last).Rank,
		dom:  s.part.NodeDomain[path[0]],
		rdom: s.part.NodeDomain[last],
		path: path,
	}
	d := r.ds[g.dom]
	d.pending++
	deg, _ := r.degradedView(g.dom)
	if len(d.bl) > 0 || deg != nil {
		if p, rerouted, boundary := r.route(g, d); p != nil && rerouted {
			// Known-dead edge avoided before the first attempt: a reroute,
			// but not a recovery event — nothing was lost. A nil detour
			// (blacklist disconnects the endpoints) keeps the original
			// path: if the fault is transient the retry machinery waits it
			// out, and if it is permanent the retries exhaust loudly.
			g.path = p
			g.boundary = boundary
			d.reroutes++
		}
	}
	r.transmit(g)
	r.armWatchdog(g.dom)
}

// transmit fires one attempt of the guard and arms its deadline.
func (r *resil) transmit(g *guard) {
	wm := &wireMsg{
		c:    chunk{phase: g.phase, seg: g.seg, hops: g.hops, iter: g.iter, val: g.val},
		recv: g.recv, sdom: g.dom, attempt: g.attempt, g: g,
	}
	g.h = r.s.sh.SendPath(g.path, r.s.seg, wm, r.deliver)
	deadline := time.Duration(r.cfg.DeadlineMult * float64(r.nominal(g.path)))
	if deadline < r.cfg.DeadlineFloor {
		deadline = r.cfg.DeadlineFloor
	}
	shift := g.attempt
	if shift > 16 {
		shift = 16
	}
	deadline <<= uint(shift)
	g.deadlineEv = r.s.sh.Engine(g.dom).After(deadline, func() { r.onDeadline(g) })
}

// deliver runs in the receiver's domain: dedup, hand the chunk to the
// collective, and ack the sender so the deadline is disarmed.
func (r *resil) deliver(p any) {
	wm := p.(*wireMsg)
	rdom := r.s.part.RankDomain[wm.recv]
	rd := r.ds[rdom]
	if r.s.it != nil && wm.c.iter != r.s.it.cur[rdom] {
		// A retransmit (or crawling original) from an iteration the barrier
		// already closed: its delivery was counted before the round could
		// complete, so this copy is a duplicate. It must not touch the seen
		// bitset — the bits now belong to the running iteration.
		rd.duplicates++
		return
	}
	if r.markSeen(wm.recv, wm.c.phase, wm.c.seg) {
		rd.duplicates++
		return
	}
	rd.deliveries++
	if wm.sdom == r.s.part.RankDomain[wm.recv] {
		r.ack(wm.g)
	} else {
		// The ack crosses back into the sender's domain; the partition
		// lookahead is the smallest causally-safe delay.
		r.s.sh.Parallel().Post(r.s.part.RankDomain[wm.recv], wm.sdom, r.s.part.Lookahead, func() { r.ack(wm.g) })
	}
	r.s.arrive(wm.recv, &wm.c)
}

// ack runs in the sender's domain: the chunk is delivered, disarm the
// deadline and settle the guard's recovery accounting.
func (r *resil) ack(g *guard) {
	if g.delivered {
		return
	}
	g.delivered = true
	eng := r.s.sh.Engine(g.dom)
	if g.deadlineEv != nil {
		eng.Cancel(g.deadlineEv)
		g.deadlineEv = nil
	}
	d := r.ds[g.dom]
	d.pending--
	if g.faultAt > 0 {
		ttr := time.Duration(eng.Now() - g.faultAt)
		if g.boundary {
			d.ttrBoundary = append(d.ttrBoundary, ttr)
		} else {
			d.ttrLocal = append(d.ttrLocal, ttr)
		}
		r.s.sh.RecordRecovery(g.dom, g.boundary)
	}
}

// onDeadline runs in the sender's domain when a guard's delivery deadline
// expires: reclaim the transfer if it is still stuck on its first hop,
// blacklist dead sender-owned path edges, re-route, back off, retransmit.
func (r *resil) onDeadline(g *guard) {
	g.deadlineEv = nil
	if g.delivered {
		return
	}
	d := r.ds[g.dom]
	d.deadlines++
	eng := r.s.sh.Engine(g.dom)
	if g.faultAt == 0 {
		g.faultAt = eng.Now()
		g.boundary = r.pathCrossesDomains(g)
	}
	aborted := r.s.sh.Abort(g.h)
	r.scanPath(g, d)
	if !aborted && g.attempt >= 1 {
		// Two deadlines with the chunk already past our first hop: the
		// stall is downstream, on edges this domain cannot observe.
		// Suspect them for a while so the re-route detours globally.
		r.suspectForeign(g, d)
	}
	if g.attempt >= r.cfg.MaxRetries {
		r.giveUp(g, d, "retries exhausted")
		return
	}
	g.attempt++
	path, rerouted, boundary := r.route(g, d)
	if path != nil && rerouted {
		g.path = path
		g.boundary = g.boundary || boundary
		d.reroutes++
	}
	// A nil path means the blacklist disconnects the endpoints; keep the
	// original path — a transient fault clears before the retries exhaust,
	// a permanent one fails loudly through the MaxRetries bound.
	backoff := r.cfg.Backoff
	shift := g.attempt - 1
	if shift > 16 {
		shift = 16
	}
	backoff <<= uint(shift)
	d.retransmits++
	eng.After(backoff, func() {
		if g.delivered {
			// The original crawled in during the backoff; the ack already
			// settled the guard.
			return
		}
		r.transmit(g)
	})
}

// pathCrossesDomains reports whether any edge of the guard's path is a
// cross-domain boundary link or owned by a foreign domain.
func (r *resil) pathCrossesDomains(g *guard) bool {
	part := r.s.part
	for i := 0; i+1 < len(g.path); i++ {
		ge, ok := part.Graph.EdgeBetween(g.path[i], g.path[i+1])
		if !ok {
			continue
		}
		if part.EdgeDomain[ge] != g.dom || part.EdgeCross[ge] >= 0 {
			return true
		}
	}
	return false
}

// scanPath blacklists every sender-owned path edge whose bandwidth scale
// has been collapsed to zero — the domain-local fault-detection step. For a
// fully intra-domain path that covers every hop; for a cross-group path it
// covers the hops up to and including the boundary link itself (whose
// serialization leg the sender's domain owns).
func (r *resil) scanPath(g *guard, d *domRecovery) {
	part := r.s.part
	for i := 0; i+1 < len(g.path); i++ {
		ge, ok := part.Graph.EdgeBetween(g.path[i], g.path[i+1])
		if !ok || part.EdgeDomain[ge] != g.dom {
			continue
		}
		if r.s.sh.Fabric(g.dom).Scale(part.EdgeLocal[ge]) > 0 {
			continue
		}
		r.blacklist(g.dom, d, ge, part.EdgeCross[ge] >= 0)
	}
}

// suspectForeign blacklists the path edges the sender's domain does not own
// for BlacklistFor, so repeated downstream stalls get detoured even though
// their fault is invisible from here. Always boundary locality.
func (r *resil) suspectForeign(g *guard, d *domRecovery) {
	part := r.s.part
	now := r.s.sh.Engine(g.dom).Now()
	for i := 0; i+1 < len(g.path); i++ {
		ge, ok := part.Graph.EdgeBetween(g.path[i], g.path[i+1])
		if !ok || part.EdgeDomain[ge] == g.dom {
			continue
		}
		if e, ok := d.bl[ge]; ok {
			if e.until != 0 && now+sim.Time(r.cfg.BlacklistFor) > e.until {
				e.until = now + sim.Time(r.cfg.BlacklistFor)
			}
			continue
		}
		d.bl[ge] = &blEntry{until: now + sim.Time(r.cfg.BlacklistFor), boundary: true}
		d.blFP ^= edgeHash(ge)
	}
}

// blacklist records a dead edge in the domain's routing view. With healing
// enabled the entry persists until a probe-verified promotion lifts it;
// otherwise it expires after BlacklistFor (time-based re-admission).
func (r *resil) blacklist(dom int, d *domRecovery, ge topology.EdgeID, boundary bool) {
	now := r.s.sh.Engine(dom).Now()
	if e, ok := d.bl[ge]; ok {
		if e.until != 0 {
			e.until = now + sim.Time(r.cfg.BlacklistFor)
		}
		return
	}
	e := &blEntry{boundary: boundary}
	if r.cfg.Heal == nil {
		e.until = now + sim.Time(r.cfg.BlacklistFor)
	} else {
		e.watched = true
		r.watchHeal(dom, d, ge)
	}
	d.bl[ge] = e
	d.blFP ^= edgeHash(ge)
}

// prune eagerly expires timed-out blacklist entries, keeping blFP
// consistent with the map before it keys the detour memo. (The previous
// lazy per-edge expiry inside the avoidance predicate would mutate the
// fingerprint mid-search.)
func (d *domRecovery) prune(now sim.Time) {
	for ge, e := range d.bl {
		if e.until != 0 && now >= e.until {
			delete(d.bl, ge)
			d.blFP ^= edgeHash(ge)
		}
	}
}

// degradedView is the domain's degraded-link view as an avoidance
// predicate plus its membership fingerprint, or (nil, 0) when there is
// nothing to steer around (no congestion plane, adaptation frozen, or an
// empty view). The fingerprint keys the detour memo alongside the
// blacklist's.
func (r *resil) degradedView(dom int) (func(topology.EdgeID) bool, uint64) {
	cs := r.s.cong
	if cs == nil || !cs.spec.Adaptive || len(cs.view[dom]) == 0 {
		return nil, 0
	}
	return func(ge topology.EdgeID) bool { return cs.view[dom][ge] }, cs.viewFP[dom]
}

// route checks the guard's path against the domain blacklist and the
// degraded-link view and, on a hit, computes a min-hop detour. Blacklisted
// edges are avoided hard; degraded edges softly — if avoiding both
// disconnects the endpoints, the detour retries with the blacklist alone
// (degraded links are slow, not dead). Detours are memoised per
// (endpoints, blacklist fingerprint, view fingerprint): a heal/degrade
// flap that restores a previous routing view turns its reroutes into map
// hits instead of shortest-path searches. Returns (path, rerouted,
// boundaryLocality); a nil path means the blacklist disconnects the
// endpoints.
func (r *resil) route(g *guard, d *domRecovery) ([]topology.NodeID, bool, bool) {
	part := r.s.part
	d.prune(r.s.sh.Engine(g.dom).Now())
	deg, degFP := r.degradedView(g.dom)
	hit, degHit, boundary := false, false, false
	for i := 0; i+1 < len(g.path); i++ {
		ge, ok := part.Graph.EdgeBetween(g.path[i], g.path[i+1])
		if !ok {
			continue
		}
		if deg != nil && deg(ge) {
			degHit = true
		}
		e, ok := d.bl[ge]
		if !ok {
			continue
		}
		hit = true
		if e.boundary {
			boundary = true
		}
	}
	if !hit && !degHit {
		return g.path, false, false
	}
	key := detourKey{from: g.path[0], to: g.path[len(g.path)-1], bl: d.blFP, view: degFP}
	p, memoised := d.detours[key]
	if !memoised {
		blOnly := func(ge topology.EdgeID) bool { _, ok := d.bl[ge]; return ok }
		avoid := blOnly
		if deg != nil {
			avoid = func(ge topology.EdgeID) bool { return blOnly(ge) || deg(ge) }
		}
		p = part.Graph.ShortestPathAvoid(g.path[0], g.path[len(g.path)-1], avoid)
		if p == nil && deg != nil {
			p = part.Graph.ShortestPathAvoid(g.path[0], g.path[len(g.path)-1], blOnly)
		}
		// A nil result is memoised too: "these fingerprints disconnect the
		// endpoints" is as reusable as a concrete detour.
		d.detours[key] = p
	}
	if p == nil {
		return nil, false, boundary
	}
	if !hit && samePath(p, g.path) {
		// Degraded-only hit with no usable detour: not a reroute.
		return g.path, false, false
	}
	return p, true, boundary
}

// giveUp retires a guard that exhausted its options; the sweep will fail
// with the collected diagnostics.
func (r *resil) giveUp(g *guard, d *domRecovery, why string) {
	d.pending--
	d.gaveUp = append(d.gaveUp, fmt.Sprintf(
		"chunk(phase=%d seg=%d) rank path %v attempt %d: %s", g.phase, g.seg, g.path, g.attempt, why))
	// The iteration barrier can never fill without this chunk; stop the
	// congestion detectors so the engines drain and Run reports the failure.
	r.s.stopDetectors(g.dom)
}

// watchHeal lazily builds the domain's health monitor and points it at the
// blacklisted edge's local endpoints. For a boundary link the local "to"
// endpoint is the serialization-leg ghost, so the probe — and therefore the
// whole heal — stays inside the owning domain.
func (r *resil) watchHeal(dom int, d *domRecovery, ge topology.EdgeID) {
	part := r.s.part
	if d.heal == nil {
		d.heal = health.New(r.s.sh.Engine(dom), r.s.sh.Fabric(dom), nil, *r.cfg.Heal, health.Hooks{
			OnHeal:    func(ev health.Event) { r.onHealed(dom, ev) },
			OnCondemn: func(ev health.Event) { r.onCondemned(dom, ev) },
		})
	}
	le := part.Subs[dom].Edge(part.EdgeLocal[ge])
	lo, hi := le.From, le.To
	if hi < lo {
		lo, hi = hi, lo
	}
	key := [2]topology.NodeID{lo, hi}
	d.watch[key] = append(d.watch[key], ge)
	d.heal.WatchLink(le.From, le.To)
}

// onHealed runs in the healed edge's domain: lift the blacklist entries the
// watched pair covers and account the heal.
func (r *resil) onHealed(dom int, ev health.Event) {
	d := r.ds[dom]
	key := [2]topology.NodeID{ev.From, ev.To}
	for _, ge := range d.watch[key] {
		if e, ok := d.bl[ge]; ok {
			if e.boundary {
				d.tthBoundary = append(d.tthBoundary, ev.TimeToHeal)
			} else {
				d.tthLocal = append(d.tthLocal, ev.TimeToHeal)
			}
			delete(d.bl, ge)
			d.blFP ^= edgeHash(ge)
		}
	}
	delete(d.watch, key)
}

// onCondemned runs in the condemned edge's domain: the blacklist entries
// become permanent and probing stops, letting the engine drain.
func (r *resil) onCondemned(dom int, ev health.Event) {
	d := r.ds[dom]
	d.condemned++
	delete(d.watch, [2]topology.NodeID{ev.From, ev.To})
}

// armWatchdog keeps a per-domain progress watchdog running while the
// domain has outstanding guards. Guards outstanding imply pending deadline
// events, so the re-arm never extends the engine's life by more than one
// interval past the last deadline.
func (r *resil) armWatchdog(dom int) {
	d := r.ds[dom]
	if d.watchArmed {
		return
	}
	d.watchArmed = true
	d.lastDeliveries = d.deliveries
	var tick func()
	tick = func() {
		if d.pending <= 0 {
			d.watchArmed = false
			return
		}
		if d.deliveries == d.lastDeliveries {
			d.stalls++
		}
		d.lastDeliveries = d.deliveries
		r.s.sh.Engine(dom).After(r.cfg.StallTimeout, tick)
	}
	r.s.sh.Engine(dom).After(r.cfg.StallTimeout, tick)
}

// gaveUpError folds the per-domain failure diagnostics, or nil.
func (r *resil) gaveUpError() error {
	var total int
	var first string
	for _, d := range r.ds {
		total += len(d.gaveUp)
		if first == "" && len(d.gaveUp) > 0 {
			first = d.gaveUp[0]
		}
	}
	if total == 0 {
		return nil
	}
	return fmt.Errorf("scale: %d chunk(s) undeliverable after recovery (first: %s)", total, first)
}

// fold aggregates the per-domain recovery state into one comparable
// RecoveryStats. Domain order is fixed, so the fold is deterministic.
func (r *resil) fold(injected chaos.Counters) RecoveryStats {
	var out RecoveryStats
	out.Injected = injected
	for _, d := range r.ds {
		out.Deadlines += d.deadlines
		out.Retransmits += d.retransmits
		out.Reroutes += d.reroutes
		out.Duplicates += d.duplicates
		out.GaveUp += uint64(len(d.gaveUp))
		out.StallWarnings += d.stalls
		out.DomainLocal += uint64(len(d.ttrLocal))
		out.Boundary += uint64(len(d.ttrBoundary))
		out.Condemned += d.condemned
		if d.heal != nil {
			out.Healed += uint64(d.heal.Healed())
		}
		for _, ttr := range d.ttrLocal {
			out.TimeToRecoverSum += ttr
			if ttr > out.TimeToRecoverMax {
				out.TimeToRecoverMax = ttr
			}
		}
		for _, ttr := range d.ttrBoundary {
			out.TimeToRecoverSum += ttr
			if ttr > out.TimeToRecoverMax {
				out.TimeToRecoverMax = ttr
			}
		}
		for _, tth := range append(append([]time.Duration(nil), d.tthLocal...), d.tthBoundary...) {
			out.TimeToHealSum += tth
			if tth > out.TimeToHealMax {
				out.TimeToHealMax = tth
			}
		}
	}
	out.Recoveries = out.DomainLocal + out.Boundary
	return out
}

// exportMetrics publishes the recovery fold into a registry, labeled by
// world size and fault locality. Runs single-threaded after Run, which is
// what makes a (not concurrency-safe) metrics.Registry usable here.
func (r *resil) exportMetrics(reg *metrics.Registry, world int, stats RecoveryStats) {
	if reg == nil {
		return
	}
	now := sim.Time(r.s.sh.Parallel().Now())
	w := strconv.Itoa(world)
	rec := r.s.sh.RecoveryEvents()
	reg.Counter("adapcc_sharded_recovery_events_total",
		"recovery events recorded on the sharded fabric by fault locality",
		"world", w, "locality", "domain_local").Add(now, float64(rec.DomainLocal))
	reg.Counter("adapcc_sharded_recovery_events_total",
		"recovery events recorded on the sharded fabric by fault locality",
		"world", w, "locality", "boundary").Add(now, float64(rec.Boundary))
	for _, a := range []struct {
		action string
		n      uint64
	}{
		{"deadline", stats.Deadlines},
		{"retransmit", stats.Retransmits},
		{"reroute", stats.Reroutes},
		{"duplicate", stats.Duplicates},
		{"gaveup", stats.GaveUp},
		{"stall_warning", stats.StallWarnings},
	} {
		reg.Counter("adapcc_scale_recovery_actions_total",
			"recovery actions taken by the resilient sweep", "action", a.action).Add(now, float64(a.n))
	}
	for _, d := range r.ds {
		for _, ttr := range d.ttrLocal {
			reg.Histogram("adapcc_time_to_recover_seconds",
				"fault-detection-to-recovered-delivery latency", metrics.DurationBuckets,
				"world", w, "locality", "domain_local").ObserveDuration(now, ttr)
		}
		for _, ttr := range d.ttrBoundary {
			reg.Histogram("adapcc_time_to_recover_seconds",
				"fault-detection-to-recovered-delivery latency", metrics.DurationBuckets,
				"world", w, "locality", "boundary").ObserveDuration(now, ttr)
		}
		for _, tth := range d.tthLocal {
			reg.Histogram("adapcc_time_to_heal_seconds",
				"exclusion-to-re-admission latency per healed target", metrics.DurationBuckets,
				"world", w, "locality", "domain_local").ObserveDuration(now, tth)
		}
		for _, tth := range d.tthBoundary {
			reg.Histogram("adapcc_time_to_heal_seconds",
				"exclusion-to-re-admission latency per healed target", metrics.DurationBuckets,
				"world", w, "locality", "boundary").ObserveDuration(now, tth)
		}
	}
	reg.Counter("adapcc_chaos_scale_events_total",
		"bandwidth re-scales fired by the chaos engine").Add(now, float64(stats.Injected.ScaleEvents))
	reg.Counter("adapcc_chaos_drops_total",
		"transfers blackholed by injected loss").Add(now, float64(stats.Injected.Drops))
	reg.Counter("adapcc_chaos_holds_total",
		"transfers parked by injected stalls").Add(now, float64(stats.Injected.Holds))
}

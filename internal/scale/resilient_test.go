package scale

import (
	"fmt"
	"os"
	"testing"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/topology"
)

// chaosRun executes one guarded sweep under the given fault schedule.
func chaosRun(topo *topology.Topo, workers int, seed int64, spec chaos.Spec, heal *health.Options) (*Result, error) {
	opts := Options{Topo: topo, Workers: workers, Seed: seed, Chaos: &spec}
	if heal != nil {
		opts.Recovery = &Resilience{Heal: heal}
	}
	return Run(opts)
}

// requireIdentical asserts two runs of the same faulted sweep are
// bit-identical: same outcome (down to the failure text when both fail),
// same virtual time, checksum, event counts and complete recovery fold.
func requireIdentical(t *testing.T, label string, a, b *Result, aerr, berr error) {
	t.Helper()
	if (aerr != nil) != (berr != nil) {
		t.Fatalf("%s: outcomes diverge: %v vs %v", label, aerr, berr)
	}
	if aerr != nil {
		if aerr.Error() != berr.Error() {
			t.Fatalf("%s: failures diverge: %q vs %q", label, aerr, berr)
		}
		return
	}
	if a.Elapsed != b.Elapsed || a.Checksum != b.Checksum || a.Fired != b.Fired || a.Windows != b.Windows {
		t.Fatalf("%s: timelines diverge: (%v, %#x, %d ev, %d win) vs (%v, %#x, %d ev, %d win)",
			label, a.Elapsed, a.Checksum, a.Fired, a.Windows, b.Elapsed, b.Checksum, b.Fired, b.Windows)
	}
	if (a.Recovery == nil) != (b.Recovery == nil) {
		t.Fatalf("%s: recovery fold present in one run only", label)
	}
	if a.Recovery != nil && *a.Recovery != *b.Recovery {
		t.Fatalf("%s: recovery folds diverge:\n%+v\nvs\n%+v", label, *a.Recovery, *b.Recovery)
	}
	if a.RecoveryEvents != b.RecoveryEvents {
		t.Fatalf("%s: fabric recovery counters diverge: %+v vs %+v", label, a.RecoveryEvents, b.RecoveryEvents)
	}
}

// firstHopEdge returns the edge of a path's first hop.
func firstHopEdge(t *testing.T, topo *topology.Topo, path []topology.NodeID) topology.EdgeID {
	t.Helper()
	if len(path) < 2 {
		t.Fatalf("degenerate path %v", path)
	}
	ge, ok := topo.Graph.EdgeBetween(path[0], path[1])
	if !ok {
		t.Fatalf("no edge %d -> %d", path[0], path[1])
	}
	return ge
}

// TestSweepChaosEquivalence extends the genome-digest determinism property
// to faulted timelines: under the same random link-fault schedule, a sweep
// run with 1, 2 and 4 workers produces the identical outcome — success with
// the same virtual time, checksum and recovery fold, or failure with the
// same diagnostic. Per-domain chaos rngs and domain-owned recovery state
// are what make this hold regardless of worker interleaving.
func TestSweepChaosEquivalence(t *testing.T) {
	for _, spec := range []topology.Spec{
		topology.RailSpec{Groups: 4, Servers: 2, Rails: 2},
		topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2},
	} {
		topo := buildTopo(t, spec)
		clean, err := Run(Options{Topo: topo, Seed: 1})
		if err != nil {
			t.Fatalf("%s: fault-free reference: %v", spec.Name(), err)
		}
		for seed := int64(0); seed < 3; seed++ {
			cs := chaos.RandomLinkSpec(seed*1001+7, topo.Graph, 5, clean.Elapsed)
			r1, e1 := chaosRun(topo, 1, seed, cs, nil)
			r2, e2 := chaosRun(topo, 2, seed, cs, nil)
			r4, e4 := chaosRun(topo, 4, seed, cs, nil)
			requireIdentical(t, fmt.Sprintf("%s seed %d w1/w2", spec.Name(), seed), r1, r2, e1, e2)
			requireIdentical(t, fmt.Sprintf("%s seed %d w1/w4", spec.Name(), seed), r1, r4, e1, e4)
			if e1 == nil && r1.Recovery == nil {
				t.Fatalf("%s seed %d: chaos run without a recovery fold", spec.Name(), seed)
			}
		}
	}
}

// TestSweepChaosDomainLocalKill1024 is the headline survivor check: kill an
// intra-domain NVLink edge on rank 0's ring path at t=0, permanently, in a
// 1024-rank fat-tree sweep (pod = domain). The sweep must complete with
// every rank's values exactly matching the closed-form sums (finish()
// enforces this before returning), the recovery must be classified
// domain-local on both the resilience fold and the sharded fabric's own
// counters — no boundary machinery involved — and the whole faulted
// timeline must replay bit-identically at two workers.
func TestSweepChaosDomainLocalKill1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank sweep")
	}
	topo := buildTopo(t, topology.FatTreeSpec{Pods: 16, Servers: 8, GPUs: 8, Spines: 8})
	s, err := newSweep(Options{Topo: topo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := s.nextPath[0]
	ge := firstHopEdge(t, topo, path)
	if s.part.EdgeCross[ge] >= 0 || s.part.EdgeDomain[ge] != s.part.NodeDomain[path[0]] {
		t.Fatalf("edge %d is not domain-local to rank 0 (cross=%d dom=%d)",
			ge, s.part.EdgeCross[ge], s.part.EdgeDomain[ge])
	}
	spec := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.LinkDown, Start: 0, Edge: ge, Rank: -1}, // Dur 0 = permanent
	}}
	r1, e1 := chaosRun(topo, 1, 1, spec, nil)
	if e1 != nil {
		t.Fatalf("survivor sweep failed: %v", e1)
	}
	rec := r1.Recovery
	if rec == nil || rec.DomainLocal == 0 {
		t.Fatalf("no domain-local recovery recorded: %+v", rec)
	}
	if rec.Boundary != 0 || r1.RecoveryEvents.Boundary != 0 {
		t.Errorf("boundary recovery recorded for an intra-domain fault: fold %+v fabric %+v",
			rec, r1.RecoveryEvents)
	}
	if r1.RecoveryEvents.DomainLocal == 0 {
		t.Errorf("sharded fabric saw no domain-local recovery: %+v", r1.RecoveryEvents)
	}
	if rec.Reroutes == 0 {
		t.Errorf("permanently dead edge was never detoured: %+v", rec)
	}
	r2, e2 := chaosRun(topo, 2, 1, spec, nil)
	requireIdentical(t, "1024-rank kill w1/w2", r1, r2, e1, e2)
}

// TestSweepChaosBoundaryFault kills a cross-domain boundary link on a used
// cross-group route (fat-tree with two spines, so a detour exists) and
// checks the recovery is classified boundary on both the fold and the
// fabric counters.
func TestSweepChaosBoundaryFault(t *testing.T) {
	topo := buildTopo(t, topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2})
	s, err := newSweep(Options{Topo: topo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := s.crossPath[s.group[0][0]]
	ge := topology.EdgeID(-1)
	for i := 0; i+1 < len(path); i++ {
		e, ok := topo.Graph.EdgeBetween(path[i], path[i+1])
		if ok && s.part.EdgeCross[e] >= 0 {
			ge = e
			break
		}
	}
	if ge < 0 {
		t.Fatalf("cross-group path %v has no boundary edge", path)
	}
	spec := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.LinkDown, Start: 0, Edge: ge, Rank: -1},
	}}
	r1, e1 := chaosRun(topo, 1, 1, spec, nil)
	if e1 != nil {
		t.Fatalf("boundary-faulted sweep failed: %v", e1)
	}
	if r1.Recovery == nil || r1.Recovery.Boundary == 0 {
		t.Fatalf("no boundary recovery recorded: %+v", r1.Recovery)
	}
	if r1.RecoveryEvents.Boundary == 0 {
		t.Errorf("sharded fabric saw no boundary recovery: %+v", r1.RecoveryEvents)
	}
	r2, e2 := chaosRun(topo, 2, 1, spec, nil)
	requireIdentical(t, "boundary kill w1/w2", r1, r2, e1, e2)
}

// TestSweepChaosHealReadmission runs a bounded link-down with per-domain
// health monitors armed: the blacklisted edge must be probed, promoted once
// the fault window closes, and the heal accounted with a positive
// exclusion-to-re-admission latency. The labeled TTR/TTH histograms and the
// recovery counters must surface in the metrics registry.
func TestSweepChaosHealReadmission(t *testing.T) {
	topo := buildTopo(t, topology.RailSpec{Groups: 2, Servers: 2, Rails: 2})
	s, err := newSweep(Options{Topo: topo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ge := firstHopEdge(t, topo, s.nextPath[0])
	spec := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.LinkDown, Start: 0, Dur: 3 * time.Millisecond, Edge: ge, Rank: -1},
	}}
	heal := &health.Options{
		Quarantine:    500 * time.Microsecond,
		ProbeInterval: 200 * time.Microsecond,
		ProbationK:    2,
	}
	reg := metrics.New()
	res, err := Run(Options{
		Topo: topo, Workers: 2, Seed: 1,
		Chaos: &spec, Recovery: &Resilience{Heal: heal}, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("healed sweep failed: %v", err)
	}
	rec := res.Recovery
	if rec == nil || rec.DomainLocal == 0 {
		t.Fatalf("no domain-local recovery recorded: %+v", rec)
	}
	if rec.Healed == 0 {
		t.Fatalf("blacklisted edge was never re-admitted: %+v", rec)
	}
	if rec.TimeToHealMax <= 0 {
		t.Errorf("healed with non-positive time-to-heal: %+v", rec)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"adapcc_sharded_recovery_events_total",
		"adapcc_scale_recovery_actions_total",
		"adapcc_time_to_recover_seconds",
		"adapcc_time_to_heal_seconds",
	} {
		if _, ok := snap.Family(name); !ok {
			t.Errorf("missing metric family %s", name)
		}
	}
	if fam, ok := snap.Family("adapcc_time_to_heal_seconds"); ok {
		for _, se := range fam.Series {
			if se.Labels["world"] == "" || se.Labels["locality"] == "" {
				t.Errorf("time-to-heal series missing world/locality labels: %+v", se.Labels)
			}
		}
	}
}

// TestShardedChaosSoak replays random multi-fault schedules at one and two
// workers and requires bit-identical outcomes. The default run stays small;
// ADAPCC_CHAOS_SOAK=1 (the CI soak step) scales it to 1024 ranks across
// four seeds.
func TestShardedChaosSoak(t *testing.T) {
	spec := topology.Spec(topology.RailSpec{Groups: 4, Servers: 2, Rails: 2})
	seeds, faults := int64(2), 6
	if os.Getenv("ADAPCC_CHAOS_SOAK") != "" {
		spec = topology.RailSpec{Groups: 16, Servers: 8, Rails: 8}
		seeds, faults = 4, 10
	}
	topo := buildTopo(t, spec)
	clean, err := Run(Options{Topo: topo, Seed: 1})
	if err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}
	for seed := int64(0); seed < seeds; seed++ {
		cs := chaos.RandomLinkSpec(seed*0x5eed+11, topo.Graph, faults, clean.Elapsed)
		r1, e1 := chaosRun(topo, 1, seed, cs, nil)
		r2, e2 := chaosRun(topo, 2, seed, cs, nil)
		requireIdentical(t, fmt.Sprintf("soak seed %d", seed), r1, r2, e1, e2)
		if e1 != nil {
			t.Logf("soak seed %d: deterministic failure (acceptable): %v", seed, e1)
			continue
		}
		t.Logf("soak seed %d: elapsed %v recovery %+v", seed, r1.Elapsed, *r1.Recovery)
	}
}

package scale

import (
	"fmt"
	"os"
	"testing"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/topology"
)

// congestRun executes one sweep with the congestion plane enabled.
func congestRun(topo *topology.Topo, workers int, seed int64, iters int, adaptive bool, spec *chaos.Spec, rec *Resilience) (*Result, error) {
	return Run(Options{
		Topo: topo, Workers: workers, Seed: seed, Iterations: iters,
		Congest: &CongestSpec{Adaptive: adaptive},
		Chaos:   spec, Recovery: rec,
	})
}

// requireCongestIdentical extends requireIdentical to the congestion fold
// and the per-iteration duration series.
func requireCongestIdentical(t *testing.T, label string, a, b *Result, aerr, berr error) {
	t.Helper()
	requireIdentical(t, label, a, b, aerr, berr)
	if aerr != nil {
		return
	}
	if (a.Congest == nil) != (b.Congest == nil) {
		t.Fatalf("%s: congestion fold present in one run only", label)
	}
	if a.Congest != nil && *a.Congest != *b.Congest {
		t.Fatalf("%s: congestion folds diverge:\n%+v\nvs\n%+v", label, *a.Congest, *b.Congest)
	}
	if len(a.IterDurations) != len(b.IterDurations) {
		t.Fatalf("%s: iteration counts diverge: %d vs %d", label, len(a.IterDurations), len(b.IterDurations))
	}
	for i := range a.IterDurations {
		if a.IterDurations[i] != b.IterDurations[i] {
			t.Fatalf("%s: iteration %d durations diverge: %v vs %v",
				label, i, a.IterDurations, b.IterDurations)
		}
	}
}

// spineEdge picks the first switch-to-switch network edge along a path — a
// spine-tier port with equal-cost siblings, the kind a reroute can avoid.
func spineEdge(t *testing.T, topo *topology.Topo, path []topology.NodeID) topology.EdgeID {
	t.Helper()
	g := topo.Graph
	for i := 0; i+1 < len(path); i++ {
		ge, ok := g.EdgeBetween(path[i], path[i+1])
		if !ok || !g.Edge(ge).Type.Network() {
			continue
		}
		if g.Node(path[i]).Kind == topology.KindSwitch && g.Node(path[i+1]).Kind == topology.KindSwitch {
			return ge
		}
	}
	t.Fatalf("path %v has no switch-switch network edge", path)
	return 0
}

// TestSweepIterationsBarrier: the multi-iteration barrier alone (no
// congestion) — every round re-verified, the duration series recorded, the
// timeline bit-identical across worker counts, and the guarded variant
// (which exercises the per-iteration dedup reset and stale-chunk gate)
// reaching the same data.
func TestSweepIterationsBarrier(t *testing.T) {
	topo := buildTopo(t, topology.RailSpec{Groups: 2, Servers: 2, Rails: 2})
	r1, e1 := Run(Options{Topo: topo, Seed: 3, Iterations: 3})
	if e1 != nil {
		t.Fatal(e1)
	}
	if len(r1.IterDurations) != 3 {
		t.Fatalf("IterDurations = %v, want 3 entries", r1.IterDurations)
	}
	for i, d := range r1.IterDurations {
		if d <= 0 {
			t.Errorf("iteration %d has non-positive duration %v", i, d)
		}
	}
	if r1.Congest != nil {
		t.Error("congestion fold present without Options.Congest")
	}
	r2, e2 := Run(Options{Topo: topo, Seed: 3, Iterations: 3, Workers: 2})
	requireCongestIdentical(t, "iterations w1/w2", r1, r2, e1, e2)

	guarded, err := Run(Options{Topo: topo, Seed: 3, Iterations: 3, Recovery: &Resilience{}})
	if err != nil {
		t.Fatalf("guarded iterated sweep failed: %v", err)
	}
	if guarded.Checksum != r1.Checksum {
		t.Errorf("guarded checksum %#x != unguarded %#x", guarded.Checksum, r1.Checksum)
	}

	mono, err := Run(Options{Topo: topo, Seed: 3, Iterations: 3, Monolithic: true})
	if err != nil {
		t.Fatalf("monolithic iterated sweep failed: %v", err)
	}
	if mono.Checksum != r1.Checksum {
		t.Errorf("monolithic checksum %#x != partitioned %#x", mono.Checksum, r1.Checksum)
	}
}

// TestSweepCongestEquivalence is the performance-only property: a seeded
// schedule of all three congestion kinds over a multi-iteration adaptive
// sweep still sums every rank exactly (finish and the per-iteration barrier
// both verify against the closed form), draws real degraded verdicts, runs
// slower than the clean fabric — and the whole congested, adapting timeline
// replays bit-identically at 1, 2 and 4 workers, congestion fold included.
func TestSweepCongestEquivalence(t *testing.T) {
	topo := buildTopo(t, topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2})
	probe, err := newSweep(Options{Topo: topo, Seed: 1, Iterations: 1, Congest: &CongestSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	hot := spineEdge(t, topo, probe.crossPath[probe.group[0][0]])
	spec, err := chaos.ParseSpec(fmt.Sprintf(
		"seed=7;pfcstorm@0s+3ms:edge=%d;incast@500us+2ms:edge=%d,fanin=6;hashcollide@1ms+2ms:edge=%d,scale=0.3",
		hot, hot, hot))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := congestRun(topo, 1, 1, 3, true, nil, nil)
	if err != nil {
		t.Fatalf("clean congest-enabled run: %v", err)
	}
	r1, e1 := congestRun(topo, 1, 1, 3, true, &spec, nil)
	if e1 != nil {
		t.Fatalf("congested sweep failed: %v", e1)
	}
	if r1.Congest == nil || r1.Congest.Degraded == 0 {
		t.Fatalf("no degraded verdicts under a PFC storm: %+v", r1.Congest)
	}
	if r1.Elapsed <= clean.Elapsed {
		t.Errorf("congestion did not cost time: %v vs clean %v", r1.Elapsed, clean.Elapsed)
	}
	if r1.Recovery != nil {
		t.Error("performance-only chaos schedule armed the recovery machinery")
	}
	for _, w := range []int{2, 4} {
		rw, ew := congestRun(topo, w, 1, 3, true, &spec, nil)
		requireCongestIdentical(t, fmt.Sprintf("congest w1/w%d", w), r1, rw, e1, ew)
	}
}

// TestSweepCongestAdaptiveBeatsFrozen is the adaptation headline at unit
// scale: under a permanent PFC storm on a spine port of a used cross-group
// route, the adaptive sweep detects the degradation, reroutes around the
// port and settles back near clean speed, while the frozen sweep pays the
// pause trickle every iteration. Steady-state iterations must be at least
// 1.3x faster adaptive than frozen.
func TestSweepCongestAdaptiveBeatsFrozen(t *testing.T) {
	topo := buildTopo(t, topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2})
	probe, err := newSweep(Options{Topo: topo, Seed: 1, Iterations: 1, Congest: &CongestSpec{}})
	if err != nil {
		t.Fatal(err)
	}
	hot := spineEdge(t, topo, probe.crossPath[probe.group[0][0]])
	spec := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.PFCStorm, Start: 0, Edge: hot, Rank: -1, Pod: -1}, // Dur 0 = permanent
	}}
	const iters = 8
	frozen, err := congestRun(topo, 2, 1, iters, false, &spec, nil)
	if err != nil {
		t.Fatalf("frozen sweep failed: %v", err)
	}
	adaptive, err := congestRun(topo, 2, 1, iters, true, &spec, nil)
	if err != nil {
		t.Fatalf("adaptive sweep failed: %v", err)
	}
	// Steady state: the worst iteration after the first half, once the
	// adaptive run has detected and rerouted (the shared warmup iterations
	// pay the in-flight crawl through the paused port either way).
	tail := func(r *Result) time.Duration {
		var worst time.Duration
		for _, d := range r.IterDurations[iters/2:] {
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	ft, at := tail(frozen), tail(adaptive)
	if at*13 > ft*10 {
		t.Errorf("adaptive steady-state %v not >=1.3x better than frozen %v (frozen %v, adaptive %v)",
			at, ft, frozen.IterDurations, adaptive.IterDurations)
	}
	ac := adaptive.Congest
	if ac.Degraded == 0 || ac.PathReroutes == 0 || ac.Adaptations == 0 {
		t.Errorf("adaptive run shows no adaptation: %+v", ac)
	}
	if ac.TimeToAdaptMax <= 0 {
		t.Errorf("adaptation with non-positive time-to-adapt: %+v", ac)
	}
	if frozen.Congest.PathReroutes != 0 {
		t.Errorf("frozen run rerouted: %+v", frozen.Congest)
	}
	if frozen.Congest.Degraded == 0 {
		t.Errorf("frozen run detected nothing (the verdict stream is the control): %+v", frozen.Congest)
	}
}

// TestCongestSoak replays random congestion schedules — half of them with
// the recovery machinery layered on top — at one and two workers and
// requires bit-identical outcomes. The default run is a 16-rank fat-tree;
// ADAPCC_CHAOS_SOAK=1 (the CI soak step) scales ranks and rounds up.
func TestCongestSoak(t *testing.T) {
	spec := topology.Spec(topology.FatTreeSpec{Pods: 2, Servers: 2, GPUs: 4, Spines: 2})
	iters, faults := 2, 3
	if os.Getenv("ADAPCC_CHAOS_SOAK") != "" {
		spec = topology.FatTreeSpec{Pods: 4, Servers: 4, GPUs: 4, Spines: 4}
		iters, faults = 4, 6
	}
	topo := buildTopo(t, spec)
	clean, err := congestRun(topo, 1, 1, iters, true, nil, nil)
	if err != nil {
		t.Fatalf("clean reference: %v", err)
	}
	horizon := clean.Elapsed
	for seed := int64(0); seed < 8; seed++ {
		cs := chaos.RandomCongestSpec(seed*0xC0+5, topo.Graph, faults, horizon)
		var rec *Resilience
		if seed%2 == 1 {
			// Guards with deadlines far beyond any congestion-induced
			// slowdown: exercises the guard/iteration plumbing without
			// mistaking slow links for dead ones.
			rec = &Resilience{DeadlineMult: 4096}
		}
		r1, e1 := congestRun(topo, 1, seed, iters, true, &cs, rec)
		r2, e2 := congestRun(topo, 2, seed, iters, true, &cs, rec)
		requireCongestIdentical(t, fmt.Sprintf("congest soak seed %d", seed), r1, r2, e1, e2)
		if e1 != nil {
			t.Logf("congest soak seed %d: deterministic failure (acceptable): %v", seed, e1)
			continue
		}
		t.Logf("congest soak seed %d: elapsed %v congest %+v", seed, r1.Elapsed, *r1.Congest)
	}
}

// Package scale runs thousand-rank AllReduce sweeps over generated
// datacenter topologies on the partitioned event engine.
//
// The collective is a hierarchical ring AllReduce shaped by the topology's
// domain structure (pods / rail groups), the layout AdapCC's coordinator
// would pick for a two-tier fabric: a ring reduce-scatter inside each
// group, a per-segment ring across groups (accumulate pass then broadcast
// pass over the group owners of that segment), and a ring allgather back
// inside each group. Intra-group traffic stays inside one simulation
// domain; only the per-segment group ring crosses domains, which is what
// lets the partitioned engine overlap the groups' work.
//
// Every rank carries one uint64 word per segment, reduced by wrapping
// addition (commutative and associative, so the result is independent of
// arrival interleaving), and the initial words derive from a splitmix64
// hash of (seed, rank, segment). The final checksum therefore pins the
// complete data plane: a lost, duplicated or misrouted chunk anywhere in a
// million-transfer sweep changes it.
package scale

import (
	"fmt"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/fabric"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// Options configures one sweep.
type Options struct {
	// Topo is the generated topology to run over.
	Topo *topology.Topo
	// Workers is the worker-pool size for the partitioned engine (min 1).
	Workers int
	// Monolithic forces the whole graph into a single simulation domain
	// (the pre-refactor execution order) — the reference the equivalence
	// tests compare against. Timing and checksum must match the
	// partitioned run exactly.
	Monolithic bool
	// SegBytes is the simulated size of one segment transfer. Default
	// 256 KiB.
	SegBytes int64
	// Seed drives the engines and the synthetic data.
	Seed int64
	// Metrics, when non-nil, receives the per-domain engine stats.
	Metrics *metrics.Registry
	// Chaos, when non-nil, arms this fault schedule on the sharded fabric
	// (see chaos.Sharded). A chaos schedule implies Recovery: a faulted
	// sweep without the recovery machinery would simply never finish.
	Chaos *chaos.Spec
	// Recovery, when non-nil (or implied by Chaos), guards every chunk
	// transfer with deadlines, retransmission, blacklist re-routing and a
	// progress watchdog. Zero fields take defaults (see Resilience).
	Recovery *Resilience
	// Iterations repeats the AllReduce (default 1), a training loop whose
	// rounds are separated by a verified barrier; Result.IterDurations
	// records each round's virtual time, the series tail-latency studies
	// take their p99 from.
	Iterations int
	// Congest, when non-nil, enables the in-fabric congestion plane,
	// flow-keyed ECMP initial routes, per-domain gray-failure detection
	// and (if CongestSpec.Adaptive) online strategy switching around
	// degraded links. Congestion-kind chaos faults require it.
	Congest *CongestSpec
}

// Result is the outcome of one sweep.
type Result struct {
	Name     string        // canonical topology name
	Ranks    int           // GPU count
	Domains  int           // simulation domains used
	Workers  int           // worker-pool size
	Elapsed  time.Duration // virtual time of the AllReduce
	Wall     time.Duration // real time the sweep took
	Fired    uint64        // events executed
	Windows  uint64        // lookahead windows
	Checksum uint64        // fold over the final per-rank values
	Speedup  float64       // busy-wall / total-wall estimate
	Stats    []sim.DomainStats
	// Recovery is the resilience fold (nil for a fault-free, unguarded
	// sweep); RecoveryEvents is the sharded fabric's own counter of
	// recovered deliveries by locality.
	Recovery       *RecoveryStats
	RecoveryEvents fabric.RecoveryCounters
	// IterDurations is the per-iteration virtual time series (one entry for
	// a classic single-shot sweep with congestion enabled, nil otherwise);
	// Congest is the congestion-plane fold (nil without Options.Congest).
	IterDurations []time.Duration
	Congest       *CongestStats
}

// mix64 is splitmix64's finalizer, the hash behind the synthetic data.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chunk phases.
const (
	phaseRS    = iota // intra-group ring reduce-scatter
	phaseAccum        // cross-group accumulate pass
	phaseBcast        // cross-group broadcast pass
	phaseAG           // intra-group ring allgather
)

// chunk is the payload of one rank-to-rank transfer.
type chunk struct {
	phase int
	seg   int
	hops  int // remaining forwards (RS, bcast, AG)
	iter  int // iteration the chunk belongs to (0 in single-shot sweeps)
	val   uint64
}

// sweep is the in-flight state of one run.
type sweep struct {
	opts  Options
	sh    *fabric.Sharded
	part  *topology.Partition
	seg   int64   // bytes per segment transfer
	m     int     // ranks per group = segments
	g     int     // groups
	group [][]int // [group][pos] -> global rank
	pos   []int   // global rank -> position in its group
	grp   []int   // global rank -> group
	// nextPath[r] routes rank r to its successor in the group ring;
	// crossPath[r] routes owner rank r to the same position in the next
	// group (nil for non-owner positions never used).
	nextPath  [][]topology.NodeID
	crossPath [][]topology.NodeID
	// vals[r][s] is rank r's current word for segment s. Each rank's row
	// is touched only from its home domain's events.
	vals [][]uint64
	// owner-rank phase-2 state, indexed by global rank.
	p1done []bool
	stash  []uint64
	hasSt  []bool
	// res, when non-nil, interposes the recovery machinery on every send;
	// ch is the armed chaos engine (nil without a fault schedule).
	res *resil
	ch  *chaos.Sharded
	// cong, when non-nil, runs the congestion plane and its detectors; it
	// drives the multi-iteration barrier (nil for classic one-shot sweeps).
	cong *congestState
	it   *iterState
}

// Run executes one sweep and verifies the result against the closed-form
// expected reduction before returning.
func Run(opts Options) (*Result, error) {
	start := time.Now()
	if opts.Topo == nil {
		return nil, fmt.Errorf("scale: no topology")
	}
	if opts.SegBytes <= 0 {
		opts.SegBytes = 256 << 10
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	s, err := newSweep(opts)
	if err != nil {
		return nil, err
	}
	s.kickoff()
	s.sh.Run(opts.Workers)
	return s.finish(start)
}

func newSweep(opts Options) (*sweep, error) {
	topo := opts.Topo
	g := topo.Graph

	// Logical groups come from the topology's own domain labelling of GPU
	// nodes, independent of how the run is executed (partitioned or
	// monolithic), so both execution modes run the identical algorithm.
	s := &sweep{opts: opts, seg: opts.SegBytes, g: topo.Domains}
	s.group = make([][]int, topo.Domains)
	ranks := 0
	for _, n := range g.Nodes() {
		if n.Kind == topology.KindGPU {
			ranks++
		}
	}
	s.pos = make([]int, ranks)
	s.grp = make([]int, ranks)
	for _, id := range g.GPUs() {
		n := g.Node(id)
		d := topo.NodeDomain[n.ID]
		s.grp[n.Rank] = d
		s.pos[n.Rank] = len(s.group[d])
		s.group[d] = append(s.group[d], n.Rank)
	}
	s.m = len(s.group[0])
	for d, members := range s.group {
		if len(members) != s.m {
			return nil, fmt.Errorf("scale: group %d has %d ranks, group 0 has %d (uniform groups required)", d, len(members), s.m)
		}
	}

	nodeDomain := topo.NodeDomain
	if opts.Monolithic {
		nodeDomain = make([]int, g.NumNodes())
	}
	part, err := topology.NewPartition(g, nodeDomain)
	if err != nil {
		return nil, err
	}
	s.part = part
	s.sh = fabric.NewSharded(part, opts.Seed)

	// Routes: every rank to its group-ring successor, and every rank to
	// its position peer in the next group (the per-segment cross ring).
	// With the congestion plane enabled the initial routes are flow-keyed
	// ECMP — distinct flows spread across the equal-cost spines exactly as
	// hashed fabrics spread them; otherwise the classic single shortest
	// path keeps legacy sweeps bit-identical.
	s.nextPath = make([][]topology.NodeID, ranks)
	s.crossPath = make([][]topology.NodeID, ranks)
	gpu := g.GPUs()
	for r := 0; r < ranks; r++ {
		grp, p := s.grp[r], s.pos[r]
		if s.m > 1 {
			next := s.group[grp][(p+1)%s.m]
			if opts.Congest != nil {
				s.nextPath[r] = s.routeNext(r, nil)
			} else {
				s.nextPath[r] = g.ShortestPath(gpu[r], gpu[next])
			}
			if s.nextPath[r] == nil {
				return nil, fmt.Errorf("scale: no route rank %d -> %d", r, next)
			}
		}
		if s.g > 1 {
			peer := s.group[(grp+1)%s.g][p]
			if opts.Congest != nil {
				s.crossPath[r] = s.routeCross(r, nil)
			} else {
				s.crossPath[r] = g.ShortestPath(gpu[r], gpu[peer])
			}
			if s.crossPath[r] == nil {
				return nil, fmt.Errorf("scale: no route rank %d -> %d", r, peer)
			}
		}
	}

	// Synthetic data and phase-2 state.
	s.vals = make([][]uint64, ranks)
	for r := range s.vals {
		row := make([]uint64, s.m)
		for seg := range row {
			row[seg] = s.initVal(r, seg)
		}
		s.vals[r] = row
	}
	s.p1done = make([]bool, ranks)
	s.stash = make([]uint64, ranks)
	s.hasSt = make([]bool, ranks)

	// Resilience: a chaos schedule implies the recovery machinery — unless
	// every fault is performance-only congestion, which slows chunks down
	// but never loses them (guarding those by default would let tight
	// deadlines mistake a stormed link for a dead one). The machinery can
	// also run on a healthy fabric (guards simply never fire).
	if opts.Recovery != nil || (opts.Chaos != nil && !opts.Chaos.PerformanceOnly()) {
		var cfg Resilience
		if opts.Recovery != nil {
			cfg = *opts.Recovery
		}
		s.res = newResil(s, cfg)
	}
	// Congestion plane, detectors and the iteration barrier. The plane must
	// be enabled before chaos arms: congestion-kind faults validate against
	// the sharded fabric's Congestion() hook.
	if opts.Congest != nil {
		s.cong = newCongestState(s, *opts.Congest)
	}
	if opts.Iterations > 1 || opts.Congest != nil {
		s.it = newIterState(s, opts.Iterations)
	}
	if opts.Chaos != nil {
		s.ch = chaos.NewSharded(s.sh, *opts.Chaos)
		if err := s.ch.Arm(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *sweep) initVal(rank, seg int) uint64 {
	return mix64(uint64(s.opts.Seed)<<32 ^ uint64(rank)<<16 ^ uint64(seg))
}

// ownerPos returns the in-group position that owns segment seg after the
// reduce-scatter (the chunk injected at position seg travels m-1 hops).
func (s *sweep) ownerPos(seg int) int { return (seg + s.m - 1) % s.m }

// send routes one chunk from rank src along a precomputed path. It must be
// invoked from src's home domain. In resilient mode the transfer is guarded
// (deadline, retransmission, re-routing) and the receiving rank is derived
// from the path's final node, which names the same GPU onArrive would
// resolve; the unguarded fast path is untouched.
func (s *sweep) send(path []topology.NodeID, c *chunk, onArrive func(*chunk)) {
	if s.res != nil {
		s.res.send(path, c)
		return
	}
	s.sh.SendPath(path, s.seg, c, func(p any) { onArrive(p.(*chunk)) })
}

// kickoff schedules every rank's first action at t=0 in its home domain.
func (s *sweep) kickoff() {
	for r := range s.vals {
		r := r
		d := s.part.RankDomain[r]
		s.sh.Engine(d).At(0, func() { s.start(r) })
	}
}

// start injects rank r's first chunk of the current iteration. Runs in r's
// home domain — at t=0 from kickoff, and again at every iteration barrier.
func (s *sweep) start(r int) {
	if s.m == 1 {
		// Degenerate group: the single rank owns its single segment
		// outright.
		s.phase1Done(r, 0)
		return
	}
	// Reduce-scatter step 0: inject the chunk for the segment at this
	// rank's own position.
	seg := s.pos[r]
	s.send(s.pathNext(r), &chunk{phase: phaseRS, seg: seg, hops: s.m - 2, iter: s.iterOf(r), val: s.vals[r][seg]}, s.arriveAt(r))
}

// pathNext / pathCross are the ring routes of rank r, refreshed against the
// domain's degraded-link view when adaptive congestion handling is on.
func (s *sweep) pathNext(r int) []topology.NodeID {
	if s.cong != nil {
		s.cong.refresh(s, r)
	}
	return s.nextPath[r]
}

func (s *sweep) pathCross(r int) []topology.NodeID {
	if s.cong != nil {
		s.cong.refresh(s, r)
	}
	return s.crossPath[r]
}

// arriveAt binds a receiving rank's arrival handler. The callback runs in
// the rank's home domain (paths end at its GPU node), so all state it
// touches is domain-local.
func (s *sweep) arriveAt(sender int) func(*chunk) {
	grp, p := s.grp[sender], s.pos[sender]
	recv := s.group[grp][(p+1)%s.m]
	return func(c *chunk) { s.arrive(recv, c) }
}

// arriveCrossAt binds the arrival handler of the position peer in the next
// group.
func (s *sweep) arriveCrossAt(sender int) func(*chunk) {
	recv := s.group[(s.grp[sender]+1)%s.g][s.pos[sender]]
	return func(c *chunk) { s.arrive(recv, c) }
}

// arrive is the per-rank event handler; it always executes in rank r's
// home domain.
func (s *sweep) arrive(r int, c *chunk) {
	switch c.phase {
	case phaseRS:
		c.val += s.vals[r][c.seg]
		if c.hops > 0 {
			c.hops--
			s.send(s.pathNext(r), c, s.arriveAt(r))
			return
		}
		// Final hop: r owns the group reduction of this segment.
		s.vals[r][c.seg] = c.val
		s.phase1Done(r, c.seg)
	case phaseAccum:
		if !s.p1done[r] {
			// Local reduce-scatter still running: park the partial until
			// phase1Done merges and forwards it.
			s.stash[r], s.hasSt[r] = c.val, true
			return
		}
		s.accumulate(r, c.seg, c.val)
	case phaseBcast:
		s.vals[r][c.seg] = c.val
		if c.hops > 0 {
			c.hops--
			s.send(s.pathCross(r), c, s.arriveCrossAt(r))
		}
		s.startAllgather(r, c.seg)
		s.final(r)
	case phaseAG:
		s.vals[r][c.seg] = c.val
		if c.hops > 0 {
			c.hops--
			s.send(s.pathNext(r), c, s.arriveAt(r))
		}
		s.final(r)
	}
}

// phase1Done runs when rank r's group owns segment seg fully reduced
// within the group; r is the owner (position ownerPos(seg)).
func (s *sweep) phase1Done(r, seg int) {
	s.p1done[r] = true
	if s.g == 1 {
		// No cross phase: the group sum is the global sum.
		s.startAllgather(r, seg)
		s.final(r)
		return
	}
	if s.grp[r] == 0 {
		// Ring head: start the accumulate pass with the local sum.
		s.send(s.pathCross(r), &chunk{phase: phaseAccum, seg: seg, iter: s.iterOf(r), val: s.vals[r][seg]}, s.arriveCrossAt(r))
		return
	}
	if s.hasSt[r] {
		s.hasSt[r] = false
		s.accumulate(r, seg, s.stash[r])
	}
}

// accumulate merges an incoming cross-group partial with the local group
// sum and moves the ring forward; the last group turns it into the
// broadcast pass.
func (s *sweep) accumulate(r, seg int, incoming uint64) {
	total := incoming + s.vals[r][seg]
	if s.grp[r] == s.g-1 {
		// Ring tail: total is the global sum. Store it and broadcast to
		// the g-1 remaining owners.
		s.vals[r][seg] = total
		s.send(s.pathCross(r), &chunk{phase: phaseBcast, seg: seg, hops: s.g - 2, iter: s.iterOf(r), val: total}, s.arriveCrossAt(r))
		s.startAllgather(r, seg)
		s.final(r)
		return
	}
	s.send(s.pathCross(r), &chunk{phase: phaseAccum, seg: seg, iter: s.iterOf(r), val: total}, s.arriveCrossAt(r))
}

// startAllgather distributes rank r's finished segment around its group.
func (s *sweep) startAllgather(r, seg int) {
	if s.m == 1 {
		return
	}
	s.send(s.pathNext(r), &chunk{phase: phaseAG, seg: seg, hops: s.m - 2, iter: s.iterOf(r), val: s.vals[r][seg]}, s.arriveAt(r))
}

// finish validates every rank's values against the closed-form reduction
// and assembles the result.
func (s *sweep) finish(start time.Time) (*Result, error) {
	if s.res != nil {
		if err := s.res.gaveUpError(); err != nil {
			return nil, err
		}
	}
	if err := s.it.iterError(); err != nil {
		return nil, err
	}
	last := s.lastIter()
	expect := make([]uint64, s.m)
	for seg := range expect {
		var sum uint64
		for r := range s.vals {
			sum += s.initValIter(r, seg, last)
		}
		expect[seg] = sum
	}
	var checksum uint64
	for r, row := range s.vals {
		for seg, v := range row {
			if v != expect[seg] {
				return nil, fmt.Errorf("scale: rank %d segment %d = %#x, want %#x (collective incomplete or corrupt)", r, seg, v, expect[seg])
			}
			checksum = mix64(checksum ^ v ^ uint64(r))
		}
	}
	par := s.sh.Parallel()
	stats := metrics.RecordEngine(s.opts.Metrics, par, nil)
	var recovery *RecoveryStats
	if s.res != nil {
		var injected chaos.Counters
		if s.ch != nil {
			injected = s.ch.Counters()
		}
		rs := s.res.fold(injected)
		s.res.exportMetrics(s.opts.Metrics, len(s.vals), rs)
		recovery = &rs
	}
	var congest *CongestStats
	if s.cong != nil {
		cst := s.cong.fold(s)
		s.cong.exportMetrics(s, s.opts.Metrics, cst)
		congest = &cst
	}
	var iterDurs []time.Duration
	if s.it != nil {
		if got := len(s.it.durs); got != s.it.total {
			return nil, fmt.Errorf("scale: %d of %d iterations completed (barrier wedged)", got, s.it.total)
		}
		iterDurs = s.it.durs
	}
	return &Result{
		Name:           s.opts.Topo.Spec.Name(),
		Ranks:          len(s.vals),
		Domains:        s.part.Domains,
		Workers:        s.opts.Workers,
		Elapsed:        time.Duration(par.Now()),
		Wall:           time.Since(start),
		Fired:          par.Fired(),
		Windows:        par.Windows(),
		Checksum:       checksum,
		Speedup:        par.SpeedupEstimate(),
		Stats:          stats,
		Recovery:       recovery,
		RecoveryEvents: s.sh.RecoveryEvents(),
		IterDurations:  iterDurs,
		Congest:        congest,
	}, nil
}

package scale

import (
	"fmt"
	"strconv"
	"time"

	"adapcc/internal/fabric"
	"adapcc/internal/grayfail"
	"adapcc/internal/metrics"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

// CongestSpec enables the in-fabric congestion plane on a sweep: per-port
// egress queues with PFC on the sharded fabric, ECMP flow-keyed initial
// routes (so distinct flows spread across equal-cost spines — and can
// collide), per-domain gray-failure detectors, and, when Adaptive, online
// strategy switching: on a degraded verdict every domain's routing view
// soft-avoids the link, and each rank lazily recomputes its ring routes
// around it at the next send. With Adaptive off the detectors still run
// (the verdict stream is the experiment's control) but routes stay frozen.
type CongestSpec struct {
	// Fabric tunes the congestion plane (PFC thresholds, pause trickle).
	Fabric fabric.CongestOptions
	// Detect tunes the gray-failure detectors (one per domain).
	Detect grayfail.Options
	// Adaptive switches strategies on degraded verdicts; false freezes the
	// routes, the baseline the adaptation is measured against.
	Adaptive bool
}

// CongestStats is the fold of one congested sweep's detection and
// adaptation activity. All fields are comparable, so worker-count
// bit-identity can be checked with ==.
type CongestStats struct {
	// Degraded / Restored / Condemned count gray-failure verdicts.
	Degraded  uint64
	Restored  uint64
	Condemned uint64
	// PathReroutes counts rank route recomputes that changed a path.
	PathReroutes uint64
	// PauseFrames / MaxQueueBytes summarize the congestion plane itself.
	PauseFrames   uint64
	MaxQueueBytes int64
	// Adaptations counts degrade→reroute episodes; TimeToAdaptMax/Sum
	// aggregate their verdict-to-first-reroute latencies.
	Adaptations    uint64
	TimeToAdaptMax time.Duration
	TimeToAdaptSum time.Duration
}

// congestState wires the congestion plane, the per-domain detectors and the
// adaptive routing view into a sweep. Per-domain slices are owned by their
// domain's events; per-rank slices by the rank's home domain.
type congestState struct {
	spec CongestSpec
	sc   *fabric.ShardedCongest
	mons []*grayfail.Monitor

	// view[d] is domain d's degraded-edge set (global ids); viewVer[d]
	// bumps on every change so ranks can refresh their routes lazily.
	// viewFP[d] is the XOR-of-edgeHash membership fingerprint of view[d]:
	// unlike the monotonic version it returns to its previous value when a
	// degrade/restore flap undoes itself, which is what lets the route memo
	// (and the resilience tier's detour memo) serve flaps from cache.
	view    []map[topology.EdgeID]bool
	viewVer []uint64
	viewFP  []uint64
	// routeMemo[d] caches refresh's picked ring routes per (rank, viewFP):
	// a flap that restores a previous view reuses the ECMP detours
	// wholesale. Per-domain maps, owned by the rank's home domain's events —
	// no cross-domain sharing, so parallel sweeps stay race-free.
	routeMemo []map[rankRouteKey][2][]topology.NodeID
	// core[ge] marks switch-to-switch edges — the multipath tiers where an
	// equal-cost detour can exist. A PFC storm's pause propagates upstream
	// into single-path host links, which then draw degraded verdicts of
	// their own; routing can only steer around the core members of the
	// view, so refresh falls back to avoiding just those.
	core []bool
	// pendingAt[d] is the earliest not-yet-adapted degraded verdict, the
	// start of the time-to-adapt clock.
	pendingAt []sim.Time

	// pathVer[r] is the view version rank r's routes were computed at.
	pathVer []uint64

	degraded, restored, condemned, rerouted []uint64
	ttas                                    [][]time.Duration
}

// ProbeSpineEdge routes the sweep the given options describe (without
// running it) and returns the first switch-to-switch network edge on a
// cross-group ring route — a spine port the collective is guaranteed to
// traverse, which is what a congestion benchmark wants to storm. The probe
// sends no traffic.
func ProbeSpineEdge(opts Options) (topology.EdgeID, error) {
	if opts.Congest == nil {
		opts.Congest = &CongestSpec{}
	}
	s, err := newSweep(opts)
	if err != nil {
		return 0, err
	}
	g := s.part.Graph
	for _, members := range s.group {
		p := s.crossPath[members[0]]
		for i := 0; i+1 < len(p); i++ {
			ge, ok := g.EdgeBetween(p[i], p[i+1])
			if !ok || !g.Edge(ge).Type.Network() {
				continue
			}
			if g.Node(p[i]).Kind == topology.KindSwitch && g.Node(p[i+1]).Kind == topology.KindSwitch {
				return ge, nil
			}
		}
	}
	return 0, fmt.Errorf("scale: no switch-to-switch edge on any cross-group route (single-switch topology?)")
}

// flowKeyNext / flowKeyCross are the per-rank ECMP flow keys of the group
// ring and the cross ring — the simulator's 5-tuples. Distinct keys fan the
// rings' flows across equal-cost spines; an unlucky pair hashing onto one
// uplink is exactly the collision the hashcollide fault models.
func (s *sweep) flowKeyNext(r int) uint64 {
	return mix64(uint64(s.opts.Seed)<<32 ^ uint64(r)<<20 ^ 0x85157af5)
}

func (s *sweep) flowKeyCross(r int) uint64 {
	return mix64(uint64(s.opts.Seed)<<32 ^ uint64(r)<<20 ^ 0xc4051ab9)
}

// routeNext / routeCross compute rank r's ring routes by flow-keyed ECMP,
// restricted to edges avoid admits (nil avoid = the whole fabric).
func (s *sweep) routeNext(r int, avoid func(topology.EdgeID) bool) []topology.NodeID {
	gpu := s.part.Graph.GPUs()
	next := s.group[s.grp[r]][(s.pos[r]+1)%s.m]
	return s.part.Graph.ECMPPathAvoid(gpu[r], gpu[next], s.flowKeyNext(r), avoid)
}

func (s *sweep) routeCross(r int, avoid func(topology.EdgeID) bool) []topology.NodeID {
	gpu := s.part.Graph.GPUs()
	peer := s.group[(s.grp[r]+1)%s.g][s.pos[r]]
	return s.part.Graph.ECMPPathAvoid(gpu[r], gpu[peer], s.flowKeyCross(r), avoid)
}

func newCongestState(s *sweep, spec CongestSpec) *congestState {
	doms := s.part.Domains
	cs := &congestState{
		spec:      spec,
		sc:        s.sh.EnableCongestion(spec.Fabric),
		mons:      make([]*grayfail.Monitor, doms),
		view:      make([]map[topology.EdgeID]bool, doms),
		viewVer:   make([]uint64, doms),
		viewFP:    make([]uint64, doms),
		routeMemo: make([]map[rankRouteKey][2][]topology.NodeID, doms),
		pendingAt: make([]sim.Time, doms),
		pathVer:   make([]uint64, len(s.vals)),
		degraded:  make([]uint64, doms),
		restored:  make([]uint64, doms),
		condemned: make([]uint64, doms),
		rerouted:  make([]uint64, doms),
		ttas:      make([][]time.Duration, doms),
	}
	for d := 0; d < doms; d++ {
		d := d
		cs.view[d] = make(map[topology.EdgeID]bool)
		cs.routeMemo[d] = make(map[rankRouteKey][2][]topology.NodeID)
		cs.mons[d] = grayfail.New(s.sh.Engine(d), s.sh.Fabric(d), spec.Detect,
			func(ev grayfail.Event) { cs.onVerdict(s, d, ev) })
	}
	// Watch every network edge from its owning domain's detector.
	g := s.part.Graph
	cs.core = make([]bool, g.NumEdges())
	for _, e := range g.Edges() {
		if !e.Type.Network() {
			continue
		}
		cs.core[e.ID] = g.Node(e.From).Kind == topology.KindSwitch &&
			g.Node(e.To).Kind == topology.KindSwitch
		d := s.part.EdgeDomain[e.ID]
		cs.mons[d].Watch(s.part.EdgeLocal[e.ID])
	}
	for d := 0; d < doms; d++ {
		cs.mons[d].Start()
	}
	return cs
}

// onVerdict runs in domain d's events (the detector lives there). The view
// delta is applied locally and posted to every other domain at the
// lookahead horizon, so all routing views converge deterministically.
func (cs *congestState) onVerdict(s *sweep, d int, ev grayfail.Event) {
	ge := s.sh.GlobalEdge(d, ev.Edge)
	switch ev.Verdict {
	case grayfail.VerdictDegraded:
		cs.degraded[d]++
	case grayfail.VerdictRestored:
		cs.restored[d]++
	case grayfail.VerdictCondemned:
		// The edge stays in the view for good: condemned is the ladder's
		// terminal rung, the link is treated as lost capacity.
		cs.condemned[d]++
		return
	}
	if !cs.spec.Adaptive {
		return
	}
	on := ev.Verdict == grayfail.VerdictDegraded
	for dd := 0; dd < s.part.Domains; dd++ {
		dd := dd
		if dd == d {
			cs.applyView(s, dd, ge, on)
			continue
		}
		s.sh.Parallel().Post(d, dd, s.part.Lookahead, func() { cs.applyView(s, dd, ge, on) })
	}
}

func (cs *congestState) applyView(s *sweep, d int, ge topology.EdgeID, on bool) {
	if on == cs.view[d][ge] {
		return
	}
	if on {
		cs.view[d][ge] = true
		if cs.pendingAt[d] == 0 {
			cs.pendingAt[d] = s.sh.Engine(d).Now()
		}
	} else {
		delete(cs.view[d], ge)
	}
	cs.viewVer[d]++
	cs.viewFP[d] ^= edgeHash(ge)
}

// rankRouteKey names one memoised pair of ring-route picks: the rank plus
// the degraded-view fingerprint they were computed under.
type rankRouteKey struct {
	rank int
	view uint64
}

// refresh lazily recomputes rank r's ring routes when its home domain's
// degraded view has changed since they were last computed, memoising the
// picks per (rank, view fingerprint) so a flap back to a previous view is
// a map hit. A nil pick (the view disconnects the endpoints) keeps the
// current path: degraded links are slow, not dead — soft avoidance never
// strands a flow. The keep-current decision stays per-call (it depends on
// the rank's live path, not just the view), so only the searches memoise.
func (cs *congestState) refresh(s *sweep, r int) {
	d := s.part.RankDomain[r]
	if cs.pathVer[r] == cs.viewVer[d] {
		return
	}
	cs.pathVer[r] = cs.viewVer[d]
	key := rankRouteKey{rank: r, view: cs.viewFP[d]}
	picks, memoised := cs.routeMemo[d][key]
	if !memoised {
		var avoid, avoidCore func(topology.EdgeID) bool
		if len(cs.view[d]) > 0 {
			avoid = func(ge topology.EdgeID) bool { return cs.view[d][ge] }
			avoidCore = func(ge topology.EdgeID) bool { return cs.view[d][ge] && cs.core[ge] }
		}
		pick := func(route func(int, func(topology.EdgeID) bool) []topology.NodeID) []topology.NodeID {
			if p := route(r, avoid); p != nil {
				return p
			}
			if avoid == nil {
				return nil
			}
			// The full view disconnects the endpoints (degraded host links
			// have no siblings): steer around just its core members.
			return route(r, avoidCore)
		}
		if s.m > 1 {
			picks[0] = pick(s.routeNext)
		}
		if s.g > 1 {
			picks[1] = pick(s.routeCross)
		}
		cs.routeMemo[d][key] = picks
	}
	changed := false
	if p := picks[0]; p != nil && !samePath(p, s.nextPath[r]) {
		s.nextPath[r] = p
		changed = true
	}
	if p := picks[1]; p != nil && !samePath(p, s.crossPath[r]) {
		s.crossPath[r] = p
		changed = true
	}
	if !changed {
		return
	}
	cs.rerouted[d]++
	if cs.pendingAt[d] != 0 {
		cs.ttas[d] = append(cs.ttas[d], time.Duration(s.sh.Engine(d).Now()-cs.pendingAt[d]))
		cs.pendingAt[d] = 0
	}
}

func samePath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fold aggregates the per-domain tallies plus the congestion plane's own
// counters into one comparable snapshot. Runs single-threaded after Run.
func (cs *congestState) fold(s *sweep) CongestStats {
	var out CongestStats
	for d := range cs.degraded {
		out.Degraded += cs.degraded[d]
		out.Restored += cs.restored[d]
		out.Condemned += cs.condemned[d]
		out.PathReroutes += cs.rerouted[d]
		for _, tta := range cs.ttas[d] {
			out.Adaptations++
			out.TimeToAdaptSum += tta
			if tta > out.TimeToAdaptMax {
				out.TimeToAdaptMax = tta
			}
		}
	}
	out.PauseFrames = cs.sc.PauseFrames()
	for _, e := range s.part.Graph.Edges() {
		if !e.Type.Network() {
			continue
		}
		if q := cs.sc.MaxQueueBytesGlobal(e.ID); q > out.MaxQueueBytes {
			out.MaxQueueBytes = q
		}
	}
	return out
}

// queueDepthBuckets are byte buckets for the queue-depth histogram,
// 4 KiB → 64 MiB in powers of four.
var queueDepthBuckets = []float64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}

// exportMetrics publishes the congestion fold into a registry, labeled by
// world size. Runs single-threaded after Run (the registry is not
// concurrency-safe).
func (cs *congestState) exportMetrics(s *sweep, reg *metrics.Registry, stats CongestStats) {
	if reg == nil {
		return
	}
	world := strconv.Itoa(len(s.vals))
	now := sim.Time(s.sh.Parallel().Now())
	for _, v := range []struct {
		verdict string
		n       uint64
	}{
		{"degraded", stats.Degraded},
		{"restored", stats.Restored},
		{"condemned", stats.Condemned},
	} {
		if v.n > 0 {
			reg.Counter("adapcc_grayfail_verdicts_total",
				"gray-failure verdicts issued by the congestion detector",
				"world", world, "verdict", v.verdict).Add(now, float64(v.n))
		}
	}
	reg.Counter("adapcc_congest_pause_frames_total",
		"PFC pause-frame assertions sent by fabric ports",
		"world", world).Add(now, float64(stats.PauseFrames))
	reg.Counter("adapcc_scale_path_reroutes_total",
		"rank ring routes recomputed around degraded links",
		"world", world).Add(now, float64(stats.PathReroutes))
	qh := reg.Histogram("adapcc_congest_queue_depth_bytes",
		"per-port high-water egress queue occupancy", queueDepthBuckets,
		"world", world)
	for _, e := range s.part.Graph.Edges() {
		if !e.Type.Network() {
			continue
		}
		if q := cs.sc.MaxQueueBytesGlobal(e.ID); q > 0 {
			qh.Observe(now, float64(q))
		}
	}
	th := reg.Histogram("adapcc_time_to_adapt_seconds",
		"degraded-verdict-to-first-reroute latency", metrics.DurationBuckets,
		"world", world)
	for d := range cs.ttas {
		for _, tta := range cs.ttas[d] {
			th.ObserveDuration(now, tta)
		}
	}
}

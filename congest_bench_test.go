// Congestion-adaptation guard: the headline claim of the congestion work is
// that online strategy switching contains gray failures — under a permanent
// PFC storm on a spine port the adaptive sweep reroutes around the paused
// port and its steady-state iteration tail beats the frozen-strategy
// baseline by at least congestGainFactor, at 256 and 1024 ranks alike, with
// exact survivor sums and a timeline that is bit-identical across 1/2/4
// workers. This test measures it and writes BENCH_congest.json so CI (and
// readers) get the numbers in machine-readable form.
package adapcc

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"adapcc/internal/chaos"
	"adapcc/internal/fabric"
	"adapcc/internal/grayfail"
	"adapcc/internal/scale"
	"adapcc/internal/topology"
)

const (
	// Four spines per pod give ECMP an equal-cost detour around the stormed
	// port (the generator's single-spine default has nothing to switch to).
	congestTopo256  = "fattree:pods=8,servers=4,gpus=8,spines=4"
	congestTopo1024 = "fattree:pods=16,servers=8,gpus=8,spines=4"
	// congestIters: enough rounds that the second half is pure steady state
	// — detection, reroute and the drained backlog all land in the first.
	congestIters = 8
	// congestGainFactor is the regression threshold: adaptive steady-state
	// tail must be at least this factor better than frozen. The storm pins
	// one spine port at a 0.2% pause trickle, so the frozen sweep pays a
	// ~500x slowdown on every crossing flow each round; rerouting recovers
	// far more than 1.3x (measured ~30-40x), but the guard only defends
	// the claim.
	congestGainFactor = 1.3
)

// congestRow is one measurement in BENCH_congest.json.
type congestRow struct {
	Topo          string  `json:"topo"`
	Ranks         int     `json:"ranks"`
	Workers       int     `json:"workers"`
	Adaptive      bool    `json:"adaptive"`
	WallMs        float64 `json:"wall_ms"`
	VirtualMs     float64 `json:"virtual_ms"`
	TailMs        float64 `json:"iter_tail_ms"` // p99 proxy: worst steady-state round
	Degraded      uint64  `json:"verdicts_degraded"`
	Restored      uint64  `json:"verdicts_restored"`
	Condemned     uint64  `json:"verdicts_condemned"`
	PathReroutes  uint64  `json:"path_reroutes"`
	Adaptations   uint64  `json:"adaptations"`
	TimeToAdaptMs float64 `json:"time_to_adapt_max_ms"`
	PauseFrames   uint64  `json:"pause_frames"`
	MaxQueueBytes int64   `json:"max_queue_bytes"`
	Checksum      string  `json:"checksum"`
}

// congestTail is the steady-state iteration tail: the worst round after the
// first half. With congestIters=8 rounds that is a p99-style worst-of-tail
// over the post-adaptation regime; the shared first half absorbs the
// in-flight crawl through the paused port (frozen and adaptive alike pay
// it, so it would only dilute the comparison).
func congestTail(tb testing.TB, res *scale.Result) time.Duration {
	tb.Helper()
	if len(res.IterDurations) != congestIters {
		tb.Fatalf("expected %d iteration durations, got %v", congestIters, res.IterDurations)
	}
	var worst time.Duration
	for _, d := range res.IterDurations[congestIters/2:] {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// runCongestSweep storms the probed spine port permanently from t=0 and
// runs the multi-round sweep to completion. The per-round barrier inside
// scale.Run verifies every rank's sums against the closed form, so a
// returned result certifies exactness at this world size.
func runCongestSweep(tb testing.TB, topoName string, workers int, adaptive bool) (*scale.Result, congestRow) {
	tb.Helper()
	spec, err := topology.ParseTopo(topoName)
	if err != nil {
		tb.Fatal(err)
	}
	topo, err := spec.Build()
	if err != nil {
		tb.Fatal(err)
	}
	hot, err := scale.ProbeSpineEdge(scale.Options{Topo: topo, Seed: 1})
	if err != nil {
		tb.Fatalf("%s: %v", topoName, err)
	}
	cs := chaos.Spec{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.PFCStorm, Start: 0, Edge: hot, Rank: -1, Pod: -1}, // Dur 0 = permanent
	}}
	res, err := scale.Run(scale.Options{
		Topo: topo, Workers: workers, Seed: 1, Iterations: congestIters,
		// The measured regime is a severe but localized storm. The spine
		// tiers here are fat (Servers x NIC split over 4 spines), so the
		// default 2% pause trickle still moves a segment quickly: pin the
		// port at 0.2% instead, where a gray port dominates the barrier
		// unless the sweep routes around it. Deep buffers (8 MiB PFC
		// threshold) keep the pause from cascading into every ingress port
		// of the victim pod, and the tight degrade threshold draws verdicts
		// only on near-dead ports — ordinary ECMP-collision queueing (ratio
		// ~0.5) must not flap the detector, or the adaptive run thrashes
		// reroutes instead of converging.
		Congest: &scale.CongestSpec{
			Adaptive: adaptive,
			Fabric:   fabric.CongestOptions{PauseScale: 0.002, PFCThreshold: 8 << 20},
			Detect:   grayfail.Options{DegradeBelow: 0.05, RecoverAbove: 0.5},
		},
		Chaos: &cs,
	})
	if err != nil {
		tb.Fatalf("%s (adaptive=%v): stormed sweep failed: %v", topoName, adaptive, err)
	}
	cg := res.Congest
	if cg == nil || cg.Degraded == 0 {
		tb.Fatalf("%s (adaptive=%v): permanent PFC storm drew no degraded verdict: %+v", topoName, adaptive, cg)
	}
	if cg.MaxQueueBytes == 0 {
		tb.Fatalf("%s: storm built no queue: %+v", topoName, cg)
	}
	if cg.Condemned == 0 {
		tb.Fatalf("%s: permanently stormed port was never condemned: %+v", topoName, cg)
	}
	if !adaptive && cg.PathReroutes != 0 {
		tb.Fatalf("%s: frozen sweep rerouted: %+v", topoName, cg)
	}
	return res, congestRow{
		Topo:          res.Name,
		Ranks:         res.Ranks,
		Workers:       res.Workers,
		Adaptive:      adaptive,
		WallMs:        float64(res.Wall) / float64(time.Millisecond),
		VirtualMs:     float64(res.Elapsed) / float64(time.Millisecond),
		TailMs:        float64(congestTail(tb, res)) / float64(time.Millisecond),
		Degraded:      cg.Degraded,
		Restored:      cg.Restored,
		Condemned:     cg.Condemned,
		PathReroutes:  cg.PathReroutes,
		Adaptations:   cg.Adaptations,
		TimeToAdaptMs: float64(cg.TimeToAdaptMax) / float64(time.Millisecond),
		PauseFrames:   cg.PauseFrames,
		MaxQueueBytes: cg.MaxQueueBytes,
		Checksum:      jsonHex(res.Checksum),
	}
}

// requireCongestBitIdentical compares two stormed runs field by field: data
// checksum, the full congestion fold, and every per-iteration duration.
func requireCongestBitIdentical(tb testing.TB, label string, a, b *scale.Result) {
	tb.Helper()
	if a.Checksum != b.Checksum {
		tb.Errorf("%s: checksums diverge: %#x vs %#x", label, a.Checksum, b.Checksum)
	}
	if *a.Congest != *b.Congest {
		tb.Errorf("%s: congestion folds diverge:\n%+v\nvs\n%+v", label, *a.Congest, *b.Congest)
	}
	for i := range a.IterDurations {
		if a.IterDurations[i] != b.IterDurations[i] {
			tb.Errorf("%s: iteration %d durations diverge: %v vs %v",
				label, i, a.IterDurations, b.IterDurations)
			break
		}
	}
}

// congestGuardAt runs the frozen/adaptive pair at one world size, asserts
// the adaptation gain and 1/2/4-worker bit-identity, and returns the rows.
func congestGuardAt(t *testing.T, topoName string) []congestRow {
	t.Helper()
	frozen, frozenRow := runCongestSweep(t, topoName, 4, false)
	adaptive := make(map[int]*scale.Result, 3)
	rows := []congestRow{frozenRow}
	for _, w := range []int{1, 2, 4} {
		res, row := runCongestSweep(t, topoName, w, true)
		adaptive[w] = res
		rows = append(rows, row)
	}
	for _, w := range []int{2, 4} {
		requireCongestBitIdentical(t, fmt.Sprintf("%s adaptive w1/w%d", topoName, w), adaptive[1], adaptive[w])
	}
	ft, at := congestTail(t, frozen), congestTail(t, adaptive[4])
	gain := float64(ft) / float64(at)
	t.Logf("%s: steady-state tail frozen %v, adaptive %v (%.2fx)", topoName, ft, at, gain)
	if gain < congestGainFactor {
		t.Errorf("%s: adaptive tail %v not >=%.1fx better than frozen %v (frozen %v, adaptive %v)",
			topoName, at, congestGainFactor, ft, frozen.IterDurations, adaptive[4].IterDurations)
	}
	ac := adaptive[4].Congest
	if ac.PathReroutes == 0 || ac.Adaptations == 0 || ac.TimeToAdaptMax <= 0 {
		t.Errorf("%s: adaptive run shows no adaptation: %+v", topoName, ac)
	}
	return rows
}

// TestCongestGuard measures steady-state iteration tail under the identical
// permanent PFC storm at 256 and 1024 ranks, frozen vs adaptive, asserts
// the >=1.3x adaptation gain and the 1/2/4-worker bit-identity at each
// size, and writes BENCH_congest.json. Every run's checksum is validated
// against the closed-form sums inside scale.Run, so passing this guard
// also certifies survivor-sum exactness under the storm.
func TestCongestGuard(t *testing.T) {
	rows := congestGuardAt(t, congestTopo256)
	rows = append(rows, congestGuardAt(t, congestTopo1024)...)

	out, err := json.MarshalIndent(struct {
		GOMAXPROCS int          `json:"gomaxprocs"`
		Rows       []congestRow `json:"rows"`
	}{runtime.GOMAXPROCS(0), rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_congest.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Thousand-rank sweep benchmarks for the partitioned event engine, and the
// CI guard that keeps them interactive. TestScaleBenchGuard writes its
// measurements to BENCH_scale.json so CI (and readers) get the numbers in
// machine-readable form.
//
// The committed BENCH_scale.json reflects the machine it was generated on;
// the speedup assertion is conditional on real parallelism being available
// (GOMAXPROCS >= 4), because on a single-CPU runner the worker pool can
// only add coordination overhead.
package adapcc

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"adapcc/internal/scale"
	"adapcc/internal/topology"
)

const (
	scaleTopo1024 = "rail:groups=16,servers=8,rails=8"
	scaleTopo4096 = "rail:groups=32,servers=16,rails=8"
	// scaleBudget is the interactivity bound for the 1024-rank sweep.
	scaleBudget = 60 * time.Second
)

func runSweep(tb testing.TB, name string, workers int) *scale.Result {
	tb.Helper()
	spec, err := topology.ParseTopo(name)
	if err != nil {
		tb.Fatal(err)
	}
	topo, err := spec.Build()
	if err != nil {
		tb.Fatal(err)
	}
	res, err := scale.Run(scale.Options{Topo: topo, Workers: workers, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// benchRow is one measurement in BENCH_scale.json.
type benchRow struct {
	Topo      string  `json:"topo"`
	Ranks     int     `json:"ranks"`
	Domains   int     `json:"domains"`
	Workers   int     `json:"workers"`
	WallMs    float64 `json:"wall_ms"`
	VirtualMs float64 `json:"virtual_ms"`
	Events    uint64  `json:"events"`
	Windows   uint64  `json:"windows"`
	Checksum  string  `json:"checksum"`
	Speedup   float64 `json:"busy_over_wall"`
}

func row(r *scale.Result) benchRow {
	return benchRow{
		Topo:      r.Name,
		Ranks:     r.Ranks,
		Domains:   r.Domains,
		Workers:   r.Workers,
		WallMs:    float64(r.Wall) / float64(time.Millisecond),
		VirtualMs: float64(r.Elapsed) / float64(time.Millisecond),
		Events:    r.Fired,
		Windows:   r.Windows,
		Checksum:  jsonHex(r.Checksum),
		Speedup:   r.Speedup,
	}
}

func jsonHex(v uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 18)
	out[0], out[1] = '0', 'x'
	for i := 0; i < 16; i++ {
		out[17-i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}

// TestScaleBenchGuard is the CI wall-clock guard: the 1024-rank
// rail-optimized AllReduce must finish well inside the interactive budget,
// single- and multi-worker runs must agree bit-for-bit, and the numbers
// land in BENCH_scale.json. With ADAPCC_SCALE_BENCH=1 it also runs the
// 4096-rank sweep and records the 1-worker versus multi-worker wall-clock
// ratio; the >=2x speedup assertion applies only when the host actually
// has parallelism (GOMAXPROCS >= 4).
func TestScaleBenchGuard(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	multi := procs
	if multi < 2 {
		multi = 2
	}

	r1 := runSweep(t, scaleTopo1024, 1)
	rN := runSweep(t, scaleTopo1024, multi)
	if r1.Wall > scaleBudget || rN.Wall > scaleBudget {
		t.Errorf("1024-rank sweep exceeded %v: 1 worker %v, %d workers %v",
			scaleBudget, r1.Wall, multi, rN.Wall)
	}
	if r1.Elapsed != rN.Elapsed || r1.Checksum != rN.Checksum || r1.Fired != rN.Fired {
		t.Errorf("worker count changed the simulation: 1w (%v, %s, %d ev) vs %dw (%v, %s, %d ev)",
			r1.Elapsed, jsonHex(r1.Checksum), r1.Fired, multi, rN.Elapsed, jsonHex(rN.Checksum), rN.Fired)
	}
	rows := []benchRow{row(r1), row(rN)}

	if os.Getenv("ADAPCC_SCALE_BENCH") == "1" {
		b1 := runSweep(t, scaleTopo4096, 1)
		bN := runSweep(t, scaleTopo4096, multi)
		if b1.Elapsed != bN.Elapsed || b1.Checksum != bN.Checksum {
			t.Errorf("4096-rank worker count changed the simulation: %v/%s vs %v/%s",
				b1.Elapsed, jsonHex(b1.Checksum), bN.Elapsed, jsonHex(bN.Checksum))
		}
		ratio := float64(b1.Wall) / float64(bN.Wall)
		t.Logf("4096 ranks: 1 worker %v, %d workers %v (%.2fx)", b1.Wall, multi, bN.Wall, ratio)
		if procs >= 4 && ratio < 2 {
			t.Errorf("4096-rank multi-worker speedup %.2fx < 2x on %d CPUs", ratio, procs)
		}
		rows = append(rows, row(b1), row(bN))
	}

	out, err := json.MarshalIndent(struct {
		GOMAXPROCS int        `json:"gomaxprocs"`
		Rows       []benchRow `json:"rows"`
	}{procs, rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkScale1024AllReduce measures one full 1024-rank rail-optimized
// AllReduce per iteration on the partitioned engine (GOMAXPROCS workers).
func BenchmarkScale1024AllReduce(b *testing.B) {
	spec, err := topology.ParseTopo(scaleTopo1024)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scale.Run(scale.Options{Topo: topo, Workers: runtime.GOMAXPROCS(0), Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Elapsed)/float64(time.Millisecond), "virtual-ms")
		b.ReportMetric(float64(res.Fired), "events")
	}
}

// Benchmarks regenerating every figure of the paper's evaluation, plus
// ablations of AdapCC's individual design choices. One iteration of each
// Benchmark regenerates the corresponding figure end-to-end on the
// simulated testbed; the benchmark reports key cells of the figure as
// custom metrics so `go test -bench` output doubles as a results table.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig12AllReduce
package adapcc

import (
	"fmt"
	"testing"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/experiments"
	"adapcc/internal/payload"
	"adapcc/internal/profile"
	"adapcc/internal/relay"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

// benchCfg keeps the figure benchmarks fast enough to loop under
// `go test -bench` while preserving every shape the tests assert.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Bytes: 32 << 20, Quick: true}
}

// runFigure executes one experiment b.N times and reports selected cells.
func runFigure(b *testing.B, id string, report func(*experiments.Table, *testing.B)) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	if report != nil && tab != nil {
		report(tab, b)
	}
}

func metric(b *testing.B, tab *experiments.Table, row, col, name string) {
	if v, ok := tab.Value(row, col); ok {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig01CloudTrace(b *testing.B) {
	runFigure(b, "fig1", func(tab *experiments.Table, b *testing.B) {
		worst := 100.0
		for _, r := range tab.Rows {
			if r.Values[0] < worst {
				worst = r.Values[0]
			}
		}
		b.ReportMetric(worst, "worst-bw-%")
	})
}

func BenchmarkFig03bWaitRatio(b *testing.B) {
	runFigure(b, "fig3b", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, "heterogeneous (2xV100+2xA100)", "p50", "heter-p50")
		metric(b, tab, "homogeneous (4xA100)", "p50", "homo-p50")
	})
}

func BenchmarkFig11Reduce(b *testing.B) {
	runFigure(b, "fig11", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, tab.Rows[0].Label, "AdapCC", "adapcc-GB/s")
		metric(b, tab, tab.Rows[0].Label, "NCCL", "nccl-GB/s")
	})
}

func BenchmarkFig12AllReduce(b *testing.B) {
	// Allocation guard: phantom payloads (the benchCfg default) must keep
	// allocs/op at chunk-metadata scale, and the dense scratch pool's
	// high-water mark is reported so regressions in buffer recycling show
	// up in the bench table.
	payload.ResetPoolStats()
	b.ReportAllocs()
	runFigure(b, "fig12", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, tab.Rows[0].Label, "AdapCC", "adapcc-GB/s")
		metric(b, tab, tab.Rows[0].Label, "NCCL", "nccl-GB/s")
		b.ReportMetric(float64(payload.PoolStats().Peak), "pool-peak-bufs")
	})
}

func BenchmarkFig13AlltoAll(b *testing.B) {
	runFigure(b, "fig13", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, tab.Rows[0].Label, "AdapCC", "adapcc-GB/s")
		metric(b, tab, tab.Rows[0].Label, "NCCL", "nccl-GB/s")
	})
}

func BenchmarkFig14TrainingComm(b *testing.B) {
	runFigure(b, "fig14", func(tab *experiments.Table, b *testing.B) {
		// Report the heterogeneous RDMA VGG16 speed-up, the headline cell.
		for _, r := range tab.Rows {
			if r.Label == "VGG16/heter/rdma" {
				b.ReportMetric(r.Values[2], "vgg16-heter-speedup")
			}
		}
	})
}

func BenchmarkFig15RelayProb(b *testing.B) {
	runFigure(b, "fig15", nil)
}

func BenchmarkFig16GPT2Batch(b *testing.B) {
	runFigure(b, "fig16", func(tab *experiments.Table, b *testing.B) {
		best := 0.0
		for _, r := range tab.Rows {
			if r.Values[2] > best {
				best = r.Values[2]
			}
		}
		b.ReportMetric(best, "best-improvement-%")
	})
}

func BenchmarkFig17ViTBatch(b *testing.B) {
	runFigure(b, "fig17", func(tab *experiments.Table, b *testing.B) {
		best := 0.0
		for _, r := range tab.Rows {
			if r.Values[2] > best {
				best = r.Values[2]
			}
		}
		b.ReportMetric(best, "best-improvement-%")
	})
}

func BenchmarkFig18aVolatile(b *testing.B) {
	runFigure(b, "fig18a", func(tab *experiments.Table, b *testing.B) {
		b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[2], "reduction-%-at-max-x")
	})
}

func BenchmarkFig18bInterference(b *testing.B) {
	runFigure(b, "fig18b", func(tab *experiments.Table, b *testing.B) {
		b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[2], "speedup-at-400%")
	})
}

func BenchmarkFig19aParallelism(b *testing.B) {
	runFigure(b, "fig19a", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, "M=4", "speedup", "m4-speedup")
	})
}

func BenchmarkFig19bAccuracy(b *testing.B) {
	runFigure(b, "fig19b", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, "AdapCC", "final", "adapcc-final-acc")
		metric(b, tab, "Relay Async", "final", "async-final-acc")
	})
}

func BenchmarkFig19cReconstruction(b *testing.B) {
	runFigure(b, "fig19c", func(tab *experiments.Table, b *testing.B) {
		b.ReportMetric(tab.Rows[len(tab.Rows)-1].Values[5], "saved-%")
	})
}

func BenchmarkFig19dRPCDelay(b *testing.B) {
	runFigure(b, "fig19d", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, "p90", "latency-ms", "p90-ms")
	})
}

func BenchmarkSummarySpeedups(b *testing.B) {
	runFigure(b, "summary", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, "AllReduce (fig12)", "vs NCCL", "allreduce-vs-nccl")
	})
}

func BenchmarkScalingSweep(b *testing.B) {
	runFigure(b, "scaling", func(tab *experiments.Table, b *testing.B) {
		metric(b, tab, tab.Rows[0].Label, "AdapCC", "adapcc-2srv-GB/s")
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last.Values[0], "adapcc-maxscale-GB/s")
	})
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Sec. 4): isolate each design choice's contribution.
// ---------------------------------------------------------------------------

// benchExec synthesises with the given request tweaks and measures one
// AllReduce on the executor.
func benchExec(b *testing.B, c *topology.Cluster, mutate func(*synth.Request)) time.Duration {
	b.Helper()
	env, err := backend.NewEnv(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	req := synth.Request{Primitive: strategy.AllReduce, Bytes: 32 << 20, Root: -1}
	if mutate != nil {
		mutate(&req)
	}
	res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), req)
	if err != nil {
		b.Fatal(err)
	}
	var elapsed time.Duration
	err = env.Exec.Run(toOp(res, payload.Phantom, &elapsed))
	if err != nil {
		b.Fatal(err)
	}
	env.Engine.Run()
	return elapsed
}

// BenchmarkAblationChunkSize compares the searched chunk size against
// Blink's fixed 8 MB and a fixed tiny chunk.
func BenchmarkAblationChunkSize(b *testing.B) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		searched := benchExec(b, c, nil)
		fixed8M := benchExec(b, c, func(r *synth.Request) { r.ChunkGrid = []int64{8 << 20} })
		fixed64K := benchExec(b, c, func(r *synth.Request) { r.ChunkGrid = []int64{64 << 10} })
		if i == b.N-1 {
			b.ReportMetric(float64(fixed8M)/float64(searched), "vs-fixed-8MB")
			b.ReportMetric(float64(fixed64K)/float64(searched), "vs-fixed-64KB")
		}
	}
}

// BenchmarkAblationAggregation compares hierarchical aggregation (leaders
// reduce locally before crossing the network) against forwarding all raw
// gradients to the root (a_{m,g} = 0 everywhere: flat star).
func BenchmarkAblationAggregation(b *testing.B) {
	c, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		agg := benchExec(b, c, func(r *synth.Request) { r.ForceVariant = "hier-star" })
		noAgg := benchExec(b, c, func(r *synth.Request) { r.ForceVariant = "flat-star" })
		if i == b.N-1 {
			b.ReportMetric(float64(noAgg)/float64(agg), "no-agg-slowdown")
		}
	}
}

// BenchmarkAblationRelayPolicy compares the break-even ski rental against
// always waiting and always proceeding under heterogeneous training.
func BenchmarkAblationRelayPolicy(b *testing.B) {
	cl, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		b.Fatal(err)
	}
	run := func(policy relay.Policy) time.Duration {
		env, err := backend.NewEnv(cl, 7)
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.New(env)
		if err != nil {
			b.Fatal(err)
		}
		a.Setup(func() {})
		env.Engine.Run()
		d, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, train.VGG16().ParamBytes, policy, nil)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := train.New(train.VGG16(), env, cl, d, 25, train.WithSeed(7))
		if err != nil {
			b.Fatal(err)
		}
		var stats *train.Stats
		tr.Start(func(s *train.Stats) { stats = s })
		env.Engine.Run()
		return stats.MeanComm()
	}
	for i := 0; i < b.N; i++ {
		breakEven := run(nil) // default ski rental
		alwaysWait := run(relay.AlwaysWait{})
		alwaysGo := run(relay.AlwaysProceed{})
		if i == b.N-1 {
			b.ReportMetric(float64(alwaysWait)/float64(breakEven), "wait-vs-skirental")
			b.ReportMetric(float64(alwaysGo)/float64(breakEven), "proceed-vs-skirental")
		}
	}
}

// BenchmarkAblationProfiling compares synthesis on profiled link values
// against NCCL-style nominal labels when a link has silently degraded.
func BenchmarkAblationProfiling(b *testing.B) {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	run := func(skipProfiling bool) time.Duration {
		env, err := backend.NewEnv(cl, 9)
		if err != nil {
			b.Fatal(err)
		}
		// A degraded server the nominal labels know nothing about.
		env.Fabric.SetServerNetworkScale(2, 0.3)
		var copts []core.Option
		if skipProfiling {
			copts = append(copts, core.WithSkipProfiling())
		}
		a, err := core.New(env, copts...)
		if err != nil {
			b.Fatal(err)
		}
		a.Setup(func() {})
		env.Engine.Run()
		elapsed, err := backend.Measure(env, a, backend.Request{
			Primitive: strategy.AllReduce, Bytes: 64 << 20, Root: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	for i := 0; i < b.N; i++ {
		profiled := run(false)
		nominal := run(true)
		if i == b.N-1 {
			b.ReportMetric(float64(nominal)/float64(profiled), "nominal-vs-profiled")
		}
	}
}

// BenchmarkAblationProfileRounds quantifies the measurement error of a
// naive all-pairs probing schedule versus the paper's interference-free
// multi-round schedule.
func BenchmarkAblationProfileRounds(b *testing.B) {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		worstErr := func(naive bool) float64 {
			env, err := backend.NewEnv(cl, 3)
			if err != nil {
				b.Fatal(err)
			}
			a, err := core.New(env)
			if err != nil {
				b.Fatal(err)
			}
			_ = a
			rep := profileOnce(b, env, naive)
			worst := 0.0
			for eid, m := range rep.ByEdge {
				e := env.Graph.Edge(eid)
				if !e.Type.Network() {
					continue
				}
				errFrac := 1 - m.StreamBps/e.BandwidthBps
				if errFrac > worst {
					worst = errFrac
				}
			}
			return worst * 100
		}
		scheduled := worstErr(false)
		naive := worstErr(true)
		if i == b.N-1 {
			b.ReportMetric(scheduled, "scheduled-worst-err-%")
			b.ReportMetric(naive, "naive-worst-err-%")
		}
	}
}

// BenchmarkAblationNCCLAlgorithm compares NCCL's two algorithms on the same
// fabric: the dual complementary binary trees (the paper's Sec. VI-B
// baseline) versus the bandwidth-optimal ring, at two and four servers.
// Rings win the multi-server bandwidth-bound regime (uniform per-NIC load);
// trees win at two servers, where both NICs are already balanced and the
// ring only adds chain depth.
func BenchmarkAblationNCCLAlgorithm(b *testing.B) {
	const bytes = 64 << 20
	run := func(servers int, ring bool) time.Duration {
		c, err := cluster.Homogeneous(topology.TransportRDMA, servers, 4)
		if err != nil {
			b.Fatal(err)
		}
		env, err := backend.NewEnv(c, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := nccl.New(env)
		var st *strategy.Strategy
		if ring {
			st, err = n.RingStrategy(strategy.AllReduce, bytes, env.AllRanks(), -1)
		} else {
			st, err = n.BuildStrategy(strategy.AllReduce, bytes, env.AllRanks(), -1)
		}
		if err != nil {
			b.Fatal(err)
		}
		var elapsed time.Duration
		op := toOp(&synth.Result{Strategy: st}, payload.Phantom, &elapsed)
		op.SingleStream = true
		if err := env.Exec.Run(op); err != nil {
			b.Fatal(err)
		}
		env.Engine.Run()
		return elapsed
	}
	for i := 0; i < b.N; i++ {
		tree4 := run(4, false)
		ring4 := run(4, true)
		tree2 := run(2, false)
		ring2 := run(2, true)
		if i == b.N-1 {
			b.ReportMetric(float64(tree4)/float64(ring4), "ring-speedup-4srv")
			b.ReportMetric(float64(tree2)/float64(ring2), "ring-speedup-2srv")
		}
	}
}

// BenchmarkCompose measures the composed collectives built on the public
// API: AllGather (N broadcasts), ReduceScatter (N reduces) and a
// Gather/Scatter pair, on the 2x4 homogeneous cluster.
func BenchmarkCompose(b *testing.B) {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	const shardLen = 1 << 18 // 1 MiB shards
	for i := 0; i < b.N; i++ {
		env, err := backend.NewEnv(cl, 1)
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.New(env)
		if err != nil {
			b.Fatal(err)
		}
		a.Setup(func() {})
		env.Engine.Run()
		ranks := env.AllRanks()

		shards := make(map[int][]float32, len(ranks))
		for _, r := range ranks {
			shards[r] = make([]float32, shardLen)
		}
		var agTime, rsTime, gsTime time.Duration
		if err := a.AllGather(nil, shards, func(_ map[int][]float32, d time.Duration) { agTime = d }); err != nil {
			b.Fatal(err)
		}
		env.Engine.Run()

		tensors := make(map[int][]float32, len(ranks))
		for _, r := range ranks {
			tensors[r] = make([]float32, shardLen*len(ranks))
		}
		if err := a.ReduceScatter(nil, tensors, func(_ map[int][]float32, d time.Duration) { rsTime = d }); err != nil {
			b.Fatal(err)
		}
		env.Engine.Run()

		start := env.Engine.Now()
		if err := a.Gather(nil, 0, shards, func(all []float32, _ time.Duration) {
			if err := a.Scatter(nil, 0, all, func(map[int][]float32, time.Duration) {
				gsTime = env.Engine.Now() - start
			}); err != nil {
				b.Fatal(err)
			}
		}); err != nil {
			b.Fatal(err)
		}
		env.Engine.Run()

		if i == b.N-1 {
			b.ReportMetric(agTime.Seconds()*1e3, "allgather-ms")
			b.ReportMetric(rsTime.Seconds()*1e3, "reducescatter-ms")
			b.ReportMetric(gsTime.Seconds()*1e3, "gather+scatter-ms")
		}
	}
}

// BenchmarkDetect measures topology-inference cost (paper: ~1.2 s of
// virtual time, constant in job scale because servers probe concurrently).
// Reported in virtual milliseconds; wall time is the simulation cost.
func BenchmarkDetect(b *testing.B) {
	for _, servers := range []int{2, 6} {
		servers := servers
		b.Run(fmt.Sprintf("%dsrv", servers), func(b *testing.B) {
			cl, err := cluster.Homogeneous(topology.TransportRDMA, servers, 4)
			if err != nil {
				b.Fatal(err)
			}
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				env, err := backend.NewEnv(cl, 1)
				if err != nil {
					b.Fatal(err)
				}
				a, err := core.New(env)
				if err != nil {
					b.Fatal(err)
				}
				virtual = a.InitTime()
			}
			b.ReportMetric(virtual.Seconds()*1e3, "virtual-ms")
		})
	}
}

// BenchmarkProfile measures the profiling period (training blocks while it
// runs — the "profile" column of Fig. 19c) at two job scales.
func BenchmarkProfile(b *testing.B) {
	for _, servers := range []int{2, 6} {
		servers := servers
		b.Run(fmt.Sprintf("%dsrv", servers), func(b *testing.B) {
			cl, err := cluster.Homogeneous(topology.TransportRDMA, servers, 4)
			if err != nil {
				b.Fatal(err)
			}
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				env, err := backend.NewEnv(cl, 1)
				if err != nil {
					b.Fatal(err)
				}
				rep := profileOnce(b, env, false)
				virtual = rep.Duration()
			}
			b.ReportMetric(virtual.Seconds()*1e3, "virtual-ms")
		})
	}
}

// BenchmarkSynthesize measures raw strategy-synthesis cost at testbed scale.
func BenchmarkSynthesize(b *testing.B) {
	cl, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cl.LogicalGraph()
	if err != nil {
		b.Fatal(err)
	}
	costs := synth.NewCosts(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(costs, synth.Request{
			Primitive: strategy.AllReduce, Bytes: 512 << 20, Root: -1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutor measures the event-driven executor's wall cost for one
// 24-rank AllReduce (simulation throughput, not simulated time).
func BenchmarkExecutor(b *testing.B) {
	cl, err := cluster.Testbed(topology.TransportRDMA)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		env, err := backend.NewEnv(cl, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := synth.Synthesize(synth.NewCosts(env.Graph, nil), synth.Request{
			Primitive: strategy.AllReduce, Bytes: 8 << 20, Root: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var elapsed time.Duration
		if err := env.Exec.Run(toOp(res, payload.Phantom, &elapsed)); err != nil {
			b.Fatal(err)
		}
		env.Engine.Run()
	}
}

// helpers ---------------------------------------------------------------

// toOp wraps a synthesised strategy in an Op running in the given payload
// mode (benchmarks default to Phantom: identical timeline, no tensor data).
func toOp(res *synth.Result, mode payload.Mode, elapsed *time.Duration) collective.Op {
	return collective.Op{
		Strategy: res.Strategy,
		Mode:     mode,
		OnDone:   func(r collective.Result) { *elapsed = r.Elapsed },
	}
}

func profileOnce(b *testing.B, env *backend.Env, naive bool) *profile.Report {
	b.Helper()
	var rep *profile.Report
	profile.New(env.Fabric, profile.Options{NaiveSchedule: naive}).Run(func(r *profile.Report) { rep = r })
	env.Engine.Run()
	if rep == nil {
		b.Fatal("profiling never completed")
	}
	return rep
}

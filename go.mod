module adapcc

go 1.24

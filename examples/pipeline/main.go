// Pipeline parallelism over AdapCC's point-to-point path: a 4-stage model
// sharded across 4 GPUs on 2 servers, GPipe-style microbatching. Stage
// activations travel through a.Send — the same profiled, chunk-pipelined
// fabric as the collectives — so the inter-server hop between stages 1 and
// 2 rides the synthesised route, not a hard-coded one.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/topology"
)

const (
	stages       = 4
	microbatches = 12
	// activation tensor between stages: 4M floats = 16 MB
	activationElems = 4 << 20
	// per-stage compute per microbatch
	stageCompute = 18 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 11)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()
	eng := env.Engine

	fmt.Printf("4-stage pipeline on 2x2 GPUs (stage 1->2 crosses servers), %d microbatches of %d MB activations\n\n",
		microbatches, activationElems*4>>20)

	// busyUntil serialises each stage's compute slot.
	busyUntil := make([]time.Duration, stages)
	var doneCount int
	var firstOut, lastOut time.Duration
	start := eng.Now()

	// compute schedules microbatch m's work on stage s once its input has
	// arrived, then forwards the activation.
	var compute func(s, m int, act []float32)
	compute = func(s, m int, act []float32) {
		at := eng.Now()
		if busyUntil[s] > at {
			at = busyUntil[s]
		}
		finish := at + stageCompute
		busyUntil[s] = finish
		eng.At(finish, func() {
			if s == stages-1 {
				doneCount++
				if doneCount == 1 {
					firstOut = eng.Now() - start
				}
				if doneCount == microbatches {
					lastOut = eng.Now() - start
				}
				return
			}
			if err := a.Send(s, s+1, act, func(data []float32, _ time.Duration) {
				compute(s+1, m, data)
			}); err != nil {
				panic(err)
			}
		})
	}

	activation := make([]float32, activationElems)
	for m := 0; m < microbatches; m++ {
		compute(0, m, activation)
	}
	eng.Run()

	serial := time.Duration(microbatches*stages) * stageCompute
	ideal := time.Duration(microbatches+stages-1) * stageCompute
	fmt.Printf("first microbatch out after %v (fill latency)\n", firstOut.Round(time.Millisecond))
	fmt.Printf("all %d microbatches done in  %v\n", microbatches, lastOut.Round(time.Millisecond))
	fmt.Printf("single-GPU serial would be   %v  -> pipeline speedup %.2fx\n",
		serial, float64(serial)/float64(lastOut))
	fmt.Printf("zero-comm GPipe bound is     %v  -> comm overhead %.1f%%\n",
		ideal, (float64(lastOut)/float64(ideal)-1)*100)
	fmt.Println("\nactivation sends overlap with the next microbatch's compute; the")
	fmt.Println("inter-server hop costs the same as any AdapCC route: profiled and chunked.")
	return nil
}

// MoE token dispatch: replace a fastMoE-style NCCL P2P AlltoAll with
// adapcc.alltoall() (the paper's fourth workload). Each GPU hosts one
// expert; every iteration each worker scatters token blocks to all experts
// and gathers the routed results back.
//
// Run with: go run ./examples/moe
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/baseline/nccl"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

const tokenBytes = 128 << 20 // token buffer per expert worker

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		return err
	}

	adapccTime, err := dispatchWith(cl, "adapcc")
	if err != nil {
		return err
	}
	ncclTime, err := dispatchWith(cl, "nccl")
	if err != nil {
		return err
	}
	fmt.Printf("\ntoken AlltoAll (%d MiB per expert, 16 experts):\n", tokenBytes>>20)
	fmt.Printf("  adapcc.alltoall(): %v (%.2f GB/s)\n", adapccTime.Round(time.Microsecond),
		collective.AlgoBandwidthBps(tokenBytes, adapccTime)/1e9)
	fmt.Printf("  NCCL send/recv:    %v (%.2f GB/s)\n", ncclTime.Round(time.Microsecond),
		collective.AlgoBandwidthBps(tokenBytes, ncclTime)/1e9)
	fmt.Printf("  speed-up: %.2fx (paper Fig. 13: ~1.31x average)\n",
		float64(ncclTime)/float64(adapccTime))
	return nil
}

func dispatchWith(cl *topology.Cluster, system string) (time.Duration, error) {
	env, err := backend.NewEnv(cl, 11)
	if err != nil {
		return 0, err
	}
	var b backend.Backend
	if system == "adapcc" {
		a, err := core.New(env)
		if err != nil {
			return 0, err
		}
		a.Setup(func() {})
		env.Engine.Run()
		b = a
	} else {
		b = nccl.New(env)
	}

	// Token buffers: slot k of worker j's buffer holds the tokens routed
	// to expert k. After the exchange, slot j of worker k holds them.
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, tokenBytes)
	var result collective.Result
	elapsed, err := backend.Measure(env, b, backend.Request{
		Primitive: strategy.AlltoAll,
		Bytes:     tokenBytes,
		Inputs:    inputs,
		OnDone:    func(r collective.Result) { result = r },
	})
	if err != nil {
		return 0, err
	}
	fmt.Printf("%s: expert 0 received %d tokens-worth of data; first routed values %v\n",
		system, len(result.Outputs[0]), result.Outputs[0][:2])
	return elapsed, nil
}

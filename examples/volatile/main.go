// Volatile network: train under cloud bandwidth volatility and watch
// AdapCC reprofile and reconstruct its communication graphs mid-training —
// without checkpointing or restarting the job (the Fig. 18a scenario).
//
// Run with: go run ./examples/volatile
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cloudtrace"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 4, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 5)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	// Replay an amplified public-cloud bandwidth trace onto every
	// server's NIC ports — the simulator's `tc` (Sec. VI-D).
	traces := cloudtrace.PerServerTraces(5, len(cl.Servers), 0.6, cloudtrace.GenOptions{
		Duration: 2 * time.Hour,
		Step:     15 * time.Second,
	})
	for s, tr := range traces {
		fmt.Printf("server %d trace: %v\n", s, tr)
	}
	cloudtrace.ApplyPerServer(env.Fabric, traces)

	w := train.VGG16()
	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil, nil)
	if err != nil {
		return err
	}
	reconstructions := 0
	tr, err := train.New(w, env, cl, driver, 1200,
		train.WithSeed(5),
		train.WithReprofile(300, func(done func()) {
			a.Reconstruct(func(overhead time.Duration) {
				reconstructions++
				prof, solve, setup := a.Overheads()
				fmt.Printf("t=%8v reconstruction #%d: %v total (profile %v, solve %v, setup %v) — no restart, no checkpoint\n",
					env.Engine.Now().Round(time.Second), reconstructions,
					overhead.Round(time.Millisecond), prof.Round(time.Millisecond),
					solve.Round(time.Millisecond), setup.Round(time.Millisecond))
				done()
			})
		}))
	if err != nil {
		return err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	fmt.Printf("\ntrained %d iterations in %v (mean comm %v/iter, %d graph reconstructions)\n",
		len(stats.Iters), stats.Makespan.Round(time.Second),
		stats.MeanComm().Round(time.Millisecond), reconstructions)
	return nil
}

// Quickstart: bring up AdapCC on a simulated two-server cluster and run
// one AllReduce, mirroring the paper's usage (Sec. VI-A):
//
//	import adapcc            →  core.New(env, opts)
//	adapcc.init()            →  done inside core.New (topology detection)
//	adapcc.setup()           →  a.Setup(...)  (profiling + contexts)
//	adapcc.allreduce(tensor) →  a.Run(backend.Request{...})
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two servers with four A100s each on 100 Gbps RDMA.
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 1)
	if err != nil {
		return err
	}

	// adapcc.init(): detect GPU placement, NIC affinity, logical topology.
	a, err := core.New(env)
	if err != nil {
		return err
	}
	fmt.Printf("detected topology in %v\n", a.InitTime().Round(time.Millisecond))

	// adapcc.setup(): profile links, synthesise strategies, register
	// transmission contexts.
	a.Setup(func() {
		fmt.Printf("setup complete at t=%v\n", env.Engine.Now().Round(time.Millisecond))
	})
	env.Engine.Run()

	// adapcc.allreduce(): each of the 8 workers contributes a 64 MiB
	// gradient tensor.
	const tensorBytes = 64 << 20
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, tensorBytes)

	err = a.Run(backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     tensorBytes,
		Root:      -1,
		Inputs:    inputs,
		OnDone: func(res collective.Result) {
			bw := collective.AlgoBandwidthBps(tensorBytes, res.Elapsed)
			fmt.Printf("allreduce of %d MiB finished in %v (Algo.bw %.2f GB/s)\n",
				tensorBytes>>20, res.Elapsed.Round(time.Microsecond), bw/1e9)
			// Every rank holds the element-wise sum.
			fmt.Printf("rank 0 result[0..3] = %v\n", res.Outputs[0][:4])
			fmt.Printf("rank 7 result[0..3] = %v\n", res.Outputs[7][:4])
		},
	})
	if err != nil {
		return err
	}
	env.Engine.Run()
	return nil
}

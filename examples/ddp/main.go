// DDP communication hook: PyTorch-style gradient bucketing overlaps each
// bucket's AllReduce with the rest of the backward pass (paper Sec. VI-A —
// "we provide a communication hook for PyTorch DDP"). Buckets stream into
// AdapCC's ordered work queue as backprop produces them, so only the last
// bucket's tail is exposed — versus paying the full AllReduce after the
// backward pass like a hook-less setup.
//
// Run with: go run ./examples/ddp
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 2)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 31)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	// A quarter-scale VGG16 keeps the simulator's real float32 buffers
	// (bytes x ranks x stages) inside laptop memory; the overlap story is
	// size-independent.
	w := train.VGG16()
	gradBytes := w.ParamBytes / 4
	backward := 120 * time.Millisecond
	sched := train.NewBucketSchedule(gradBytes, train.DefaultBucketBytes, backward)
	fmt.Printf("VGG16 (1/4 scale): %d MB of gradients -> %d buckets of <=25 MiB over a %v backward pass\n\n",
		gradBytes>>20, len(sched.Buckets), backward)

	// Hook-less reference: one full-tensor AllReduce after backward ends.
	var sequential time.Duration
	if err := a.Run(backend.Request{
		Primitive: strategy.AllReduce,
		Bytes:     gradBytes,
		Root:      -1,
		Inputs:    backend.MakeInputs(env.AllRanks(), gradBytes),
		OnDone:    func(r collective.Result) { sequential = r.Elapsed },
	}); err != nil {
		return err
	}
	env.Engine.Run()

	// With the hook: buckets overlap the backward pass via the work queue.
	q := a.NewQueue()
	var tail, total time.Duration
	if err := train.RunBucketedIteration(a, q, sched, func(tl, tt time.Duration) {
		tail, total = tl, tt
	}); err != nil {
		return err
	}
	env.Engine.Run()

	fmt.Printf("without the hook: backward %v + AllReduce %v   = %v exposed comm\n",
		backward, sequential.Round(time.Microsecond), sequential.Round(time.Microsecond))
	fmt.Printf("with the hook:    backward %v, comm tail after = %v (iteration %v)\n",
		backward, tail.Round(time.Microsecond), total.Round(time.Microsecond))
	fmt.Printf("\n%.1f%% of communication hidden behind the backward pass\n",
		(1-float64(tail)/float64(sequential))*100)
	fmt.Println("the queue keeps buckets ordered, so overlap never reorders gradient updates.")
	return nil
}

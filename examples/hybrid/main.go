// Hybrid parallelism: communicator groups sharing one fabric.
//
// A Megatron-style 2 DP × 2 TP × 2 PP job on 8 single-GPU cloud
// instances runs three kinds of collectives at once, all crossing the
// same NICs:
//
//   - TP all-reduce chains — small, latency-critical, on the forward
//     path of every layer;
//   - PP activation transfers — medium broadcasts between stages;
//   - DP gradient sync — one bulk all-reduce per iteration, overlapped
//     with the next iteration's compute.
//
// Act 1 schedules all twelve groups in one undifferentiated class: at
// every shared link the bulk DP chunks and the latency-critical TP
// chunks split bandwidth equally, so iterations that overlap a gradient
// sync stretch out and the tail grows.
//
// Act 2 gives each parallelism dimension its own traffic class
// (TP > PP > DP, the default ladder of comm.Spec): weighted-fair
// queueing at chunk granularity lets TP and PP cut ahead of in-flight
// gradient syncs without ever preempting a chunk mid-wire. Same fabric,
// same traffic, shorter tail.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/comm"
	"adapcc/internal/core"
	"adapcc/internal/payload"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
)

const (
	iterations = 20
	tpRounds   = 6        // serial TP all-reduces per iteration (per layer block)
	tpBytes    = 4 << 20  // activation all-reduce
	ppBytes    = 8 << 20  // stage-boundary activation transfer
	dpBytes    = 64 << 20 // gradient bucket
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("hybrid 2 DP x 2 TP x 2 PP on 8 single-GPU instances; every group crosses the NICs")
	fmt.Printf("per iteration: %d x %d MiB TP all-reduces (serial), %d MiB PP transfer, %d MiB DP sync (overlapped)\n\n",
		tpRounds, tpBytes>>20, ppBytes>>20, dpBytes>>20)

	naive, err := runAct(false)
	if err != nil {
		return err
	}
	fmt.Printf("act 1 — one class for everything (naive FIFO):\n%s\n", naive)

	classed, err := runAct(true)
	if err != nil {
		return err
	}
	fmt.Printf("act 2 — per-dimension classes, TP > PP > DP:\n%s\n", classed)

	fmt.Printf("tail iteration (p95): %v -> %v (%.2fx)\n",
		naive.p95().Round(time.Microsecond), classed.p95().Round(time.Microsecond),
		float64(naive.p95())/float64(classed.p95()))
	fmt.Println("the gradient sync takes what the critical path leaves; it no longer sets the tail")
	return nil
}

// actResult holds per-iteration critical-path times (TP + PP completion)
// for one scheduling policy.
type actResult struct {
	iters []time.Duration
	total time.Duration // until the last gradient sync drained
}

func (r *actResult) String() string {
	return fmt.Sprintf("  iteration mean %v, p95 %v, max %v; all syncs drained at %v",
		r.mean().Round(time.Microsecond), r.p95().Round(time.Microsecond),
		r.max().Round(time.Microsecond), r.total.Round(time.Millisecond))
}

func (r *actResult) mean() time.Duration {
	var sum time.Duration
	for _, d := range r.iters {
		sum += d
	}
	return sum / time.Duration(len(r.iters))
}

func (r *actResult) p95() time.Duration {
	s := append([]time.Duration(nil), r.iters...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*95/100]
}

func (r *actResult) max() time.Duration {
	var m time.Duration
	for _, d := range r.iters {
		if d > m {
			m = d
		}
	}
	return m
}

// runAct drives the full hybrid job once. classed=false flattens every
// group into priority 0 / weight 1 (what a group-oblivious runtime
// does); classed=true keeps the spec's TP > PP > DP ladder.
func runAct(classed bool) (*actResult, error) {
	cl, err := cluster.SingleGPUInstances(topology.TransportRDMA, 8)
	if err != nil {
		return nil, err
	}
	env, err := backend.NewEnv(cl, 7)
	if err != nil {
		return nil, err
	}
	a, err := core.New(env, core.WithSkipProfiling())
	if err != nil {
		return nil, err
	}
	m, err := comm.NewManager(a)
	if err != nil {
		return nil, err
	}
	specs, err := comm.Spec{DP: 2, TP: 2, PP: 2}.Groups()
	if err != nil {
		return nil, err
	}
	if !classed {
		for i := range specs {
			specs[i].Priority = comm.PriorityBulk
			specs[i].Weight = 1
		}
	}
	groups, err := m.NewGroups(specs)
	if err != nil {
		return nil, err
	}
	var tpG, dpG, ppG []*comm.Group
	for _, g := range groups {
		switch g.Name()[:2] {
		case "tp":
			tpG = append(tpG, g)
		case "dp":
			dpG = append(dpG, g)
		case "pp":
			ppG = append(ppG, g)
		}
	}

	res := &actResult{}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// The gradient sync of iteration i overlaps iteration i+1's compute:
	// each DP group launches as soon as both its previous sync finished
	// and the new iteration started.
	dpBusy := make(map[string]bool)
	dpOwed := make(map[string]int)
	var launchDP func(g *comm.Group)
	launchDP = func(g *comm.Group) {
		dpBusy[g.Name()] = true
		err := g.Run(backend.Request{
			Primitive: strategy.AllReduce, Bytes: dpBytes, Root: -1,
			Mode: payload.Phantom,
			OnDone: func(collective.Result) {
				dpBusy[g.Name()] = false
				if dpOwed[g.Name()] > 0 {
					dpOwed[g.Name()]--
					launchDP(g)
				}
			},
		})
		if err != nil {
			fail(err)
		}
	}

	var startIter func()
	var iterStart time.Duration
	pending := 0
	finishOne := func() {
		pending--
		if pending > 0 {
			return
		}
		res.iters = append(res.iters, time.Duration(env.Engine.Now())-iterStart)
		if len(res.iters) < iterations && runErr == nil {
			startIter()
		}
	}
	startIter = func() {
		iterStart = time.Duration(env.Engine.Now())
		for _, g := range dpG {
			if dpBusy[g.Name()] {
				dpOwed[g.Name()]++
			} else {
				launchDP(g)
			}
		}
		// The iteration's critical path: every TP chain and PP transfer.
		pending = len(tpG) + len(ppG)
		for _, g := range tpG {
			g := g
			round := 0
			var step func()
			step = func() {
				err := g.Run(backend.Request{
					Primitive: strategy.AllReduce, Bytes: tpBytes, Root: -1,
					Mode: payload.Phantom,
					OnDone: func(collective.Result) {
						round++
						if round < tpRounds {
							step()
						} else {
							finishOne()
						}
					},
				})
				if err != nil {
					fail(err)
				}
			}
			step()
		}
		for _, g := range ppG {
			err := g.Run(backend.Request{
				Primitive: strategy.Broadcast, Bytes: ppBytes, Root: g.Ranks()[0],
				Mode:   payload.Phantom,
				OnDone: func(collective.Result) { finishOne() },
			})
			if err != nil {
				fail(err)
			}
		}
	}
	startIter()
	env.Engine.Run()
	if runErr != nil {
		return nil, runErr
	}
	if len(res.iters) != iterations {
		return nil, fmt.Errorf("completed %d/%d iterations", len(res.iters), iterations)
	}
	res.total = time.Duration(env.Engine.Now())
	return res, nil
}

// Fault tolerance: two recovery granularities, no restarts.
//
// Act 1 — mid-COLLECTIVE link failure: an NVLink goes dark while an
// AllReduce is in flight. Chunk deadlines detect it, retransmissions
// exhaust, the controller writes the link off and re-synthesizes over the
// surviving topology; the same collective completes with every rank still
// participating.
//
// Act 2 — mid-TRAINING worker death: a worker dies between iterations and
// the relay coordinator excludes it, redistributes the data loader
// (constant global batch) and continues — where NCCL would hang and need a
// checkpoint+restart (Sec. IV-C(2), Fig. 19c).
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := runLinkFailure(); err != nil {
		log.Fatal(err)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// runLinkFailure is act 1: a link dies mid-collective and the collective
// itself recovers — detect, exclude, re-synthesize, re-run — without the
// training loop ever seeing a failure.
func runLinkFailure() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 17)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	// Kill both directions of one NVLink 300 µs into the collective.
	g := env.Graph
	g0, _ := g.GPUByRank(0)
	g1, _ := g.GPUByRank(1)
	start := env.Engine.Now()
	env.Engine.After(300*time.Microsecond, func() {
		fmt.Printf("t=+%v  NVLink between ranks 0 and 1 goes dark (both directions)\n",
			(env.Engine.Now() - start).Round(time.Microsecond))
		if eid, ok := g.EdgeBetween(g0, g1); ok {
			env.Fabric.SetScale(eid, 0)
		}
		if eid, ok := g.EdgeBetween(g1, g0); ok {
			env.Fabric.SetScale(eid, 0)
		}
	})

	const bytes = 16 << 20
	ranks := env.AllRanks()
	inputs := backend.MakeInputs(ranks, bytes)
	fmt.Printf("act 1: AllReduce of %d MiB on %d GPUs; a strategy link will fail mid-flight\n\n", bytes>>20, len(ranks))

	var res core.ResilientResult
	var resErr error
	err = a.RunResilient(backend.Request{
		Primitive: strategy.AllReduce, Bytes: bytes, Root: -1, Inputs: inputs,
	}, func(r core.ResilientResult, err error) { res, resErr = r, err },
		core.WithRecovery(collective.Recovery{
			DeadlineFloor: time.Millisecond,
			MaxRetries:    3,
		}))
	if err != nil {
		return err
	}
	env.Engine.Run()
	if resErr != nil {
		return resErr
	}
	for _, ev := range res.Events {
		fmt.Printf("t=+%v  detected: %v\n", (ev.Report.At - start).Round(time.Microsecond), ev.Report)
		fmt.Printf("         excluded link %v, re-synthesized (%s search) in %v — no restart, no checkpoint\n",
			ev.ExcludedPair, ev.Ladder, ev.Overhead.Round(time.Millisecond))
	}
	stats := env.Exec.RecoveryStats()
	fmt.Printf("\ncompleted in %v over all %d ranks after %d attempt(s): %d chunk deadlines, %d retransmissions\n",
		res.Elapsed.Round(time.Millisecond), len(res.Survivors), res.Attempts,
		stats.Deadlines, stats.Retransmits)
	fmt.Printf("the collective itself recovered; training above it never noticed\n\n")
	fmt.Println("----")
	return nil
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 17)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	w := train.ViT()
	const crashIteration = 10
	crashed := env.AllRanks()[5]

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil,
		func(faulty []int) {
			fmt.Printf("t=%v coordinator excluded faulty workers %v; data loader redistributed (global batch unchanged)\n",
				env.Engine.Now().Round(time.Millisecond), faulty)
		})
	if err != nil {
		return err
	}

	perIter := func(stats *train.Stats, i int) time.Duration {
		return stats.Iters[i].Total
	}
	tr, err := train.New(w, env, cl, driver, 24,
		train.WithBatchPerGPU(128),
		train.WithSeed(17),
		train.WithDeadAfter(map[int]int{crashed: crashIteration}))
	if err != nil {
		return err
	}
	fmt.Printf("training ViT on 8 GPUs; rank %d will crash at iteration %d\n\n", crashed, crashIteration)
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	fmt.Printf("\ncompleted %d/%d iterations without restarting (alive workers: %v)\n",
		len(stats.Iters), 24, driver.Alive())
	fmt.Printf("iteration before crash: %v; iteration of crash (fault deadline + catch-up): %v; after: %v\n",
		perIter(stats, crashIteration-1).Round(time.Millisecond),
		perIter(stats, crashIteration).Round(time.Millisecond),
		perIter(stats, crashIteration+2).Round(time.Millisecond))
	fmt.Printf("global batch stayed %d: survivors' per-GPU batch grew from 128 to %d\n",
		stats.GlobalBatch, (stats.GlobalBatch+6)/7)
	fmt.Println("\nPyTorch Elastic would need ~15s to detect the fault and a full job restart;")
	fmt.Println("AdapCC's coordinator excluded the worker and training never stopped.")
	return nil
}

// Fault tolerance: kill a worker mid-training and watch AdapCC exclude it,
// redistribute the data loader (constant global batch) and continue — where
// NCCL would hang and need a checkpoint+restart (Sec. IV-C(2), Fig. 19c).
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 17)
	if err != nil {
		return err
	}
	a, err := core.New(env, core.Options{})
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	w := train.ViT()
	const crashIteration = 10
	crashed := env.AllRanks()[5]

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil,
		func(faulty []int) {
			fmt.Printf("t=%v coordinator excluded faulty workers %v; data loader redistributed (global batch unchanged)\n",
				env.Engine.Now().Round(time.Millisecond), faulty)
		})
	if err != nil {
		return err
	}

	perIter := func(stats *train.Stats, i int) time.Duration {
		return stats.Iters[i].Total
	}
	tr, err := train.NewTrainer(train.Config{
		Workload: w, Env: env, Cluster: cl, Driver: driver,
		Iterations:  24,
		BatchPerGPU: 128,
		Seed:        17,
		DeadAfter:   map[int]int{crashed: crashIteration},
	})
	if err != nil {
		return err
	}
	fmt.Printf("training ViT on 8 GPUs; rank %d will crash at iteration %d\n\n", crashed, crashIteration)
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	fmt.Printf("\ncompleted %d/%d iterations without restarting (alive workers: %v)\n",
		len(stats.Iters), 24, driver.Alive())
	fmt.Printf("iteration before crash: %v; iteration of crash (fault deadline + catch-up): %v; after: %v\n",
		perIter(stats, crashIteration-1).Round(time.Millisecond),
		perIter(stats, crashIteration).Round(time.Millisecond),
		perIter(stats, crashIteration+2).Round(time.Millisecond))
	fmt.Printf("global batch stayed %d: survivors' per-GPU batch grew from 128 to %d\n",
		stats.GlobalBatch, (stats.GlobalBatch+6)/7)
	fmt.Println("\nPyTorch Elastic would need ~15s to detect the fault and a full job restart;")
	fmt.Println("AdapCC's coordinator excluded the worker and training never stopped.")
	return nil
}

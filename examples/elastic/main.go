// Elastic scale-down AND scale-up, in two acts.
//
// Act 1 — scripted return: a worker crashes mid-training, AdapCC excludes
// it (T_fault, Sec. IV-C(2)) and keeps going on 7 GPUs; the worker comes
// back later and is readmitted into the very next iteration — no
// checkpoint, no process-group rebuild, no NCCL communicator re-init. The
// data loader re-redistributes both ways so the global batch never changes.
//
// Act 2 — health-monitored healing: nobody scripts the return. A worker's
// device hangs, the coordinator declares it faulty, and a background
// health monitor probes the hardware (kernel launches + link transfers)
// until it passes probation — then readmits it on its own. Throughput
// recovers to within a few percent of the pre-fault rate.
//
// Run with: go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/health"
	"adapcc/internal/sim"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if err := runHealingAct(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== act 1: scripted leave and return ===")
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 23)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	w := train.VGG16()
	const (
		crashIter  = 8
		reviveIter = 20
		iterations = 30
	)
	leaver := env.AllRanks()[6]

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil,
		func(faulty []int) {
			fmt.Printf("t=%-8v coordinator declared %v faulty; continuing on %d workers\n",
				env.Engine.Now().Round(time.Millisecond), faulty, len(env.AllRanks())-len(faulty))
		})
	if err != nil {
		return err
	}

	fmt.Printf("training VGG16 on 8 GPUs; rank %d leaves at iteration %d and returns at %d\n\n",
		leaver, crashIter, reviveIter)

	worldLog := make([]int, iterations)
	tr, err := train.New(w, env, cl, driver, iterations,
		train.WithBatchPerGPU(64),
		train.WithSeed(23),
		train.WithDeadAfter(map[int]int{leaver: crashIter}),
		train.WithReviveAfter(map[int]int{leaver: reviveIter}),
		train.WithOnIteration(func(i int, _ train.IterStats) {
			worldLog[i] = len(driver.Alive())
			switch i {
			case crashIter - 1, crashIter + 3, reviveIter, iterations - 1:
				fmt.Printf("t=%-8v iteration %2d: %d workers in the group\n",
					env.Engine.Now().Round(time.Millisecond), i, len(driver.Alive()))
			}
		}))
	if err != nil {
		return err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	fmt.Printf("\ncompleted %d/%d iterations; final group: %v\n",
		len(stats.Iters), iterations, driver.Alive())
	fmt.Printf("global batch stayed %d throughout: per-GPU batch 64 -> %d (7 workers) -> 64 again\n",
		stats.GlobalBatch, (stats.GlobalBatch+6)/7)
	fmt.Println("\nwith NCCL, both membership changes would be checkpoint+restart events")
	fmt.Println("(Fig. 19c prices one at 3.5-5.3 s); AdapCC's coordinator handled both live.")
	return nil
}

// runHealingAct is the flap-then-heal act: the victim's device hangs for a
// window of virtual time, and instead of a scripted revival the health
// monitor earns the re-admission with probes.
func runHealingAct() error {
	fmt.Println("\n=== act 2: health-monitored healing ===")
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 23)
	if err != nil {
		return err
	}
	a, err := core.New(env)
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	w := train.VGG16()
	const (
		faultIter  = 8
		iterations = 40
		recoverAt  = 8 * time.Second
	)
	victim := env.AllRanks()[5]

	// The device hangs until recoverAt. Compute scheduling is handled by
	// the trainer; the hang is what the monitor's kernel probes see.
	env.GPUs[victim].SetKernelStall(func(now sim.Time) time.Duration {
		if now < sim.Time(recoverAt) {
			return time.Duration(sim.Time(recoverAt) - now)
		}
		return 0
	})

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil,
		func(faulty []int) {
			fmt.Printf("t=%-8v coordinator declared %v faulty; health monitor takes over\n",
				env.Engine.Now().Round(time.Millisecond), faulty)
		})
	if err != nil {
		return err
	}
	m := driver.EnableHealing(health.Options{
		Quarantine:    100 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		ProbationK:    3,
		GiveUpAfter:   200,
		MaxQuarantine: 500 * time.Millisecond,
	})

	fmt.Printf("training VGG16 on 8 GPUs; rank %d's device hangs at iteration %d and recovers at t=%v\n\n",
		victim, faultIter, recoverAt)

	healedSeen := false
	var iters []train.IterStats
	tr, err := train.New(w, env, cl, driver, iterations,
		train.WithBatchPerGPU(64),
		train.WithSeed(23),
		train.WithDeadAfter(map[int]int{victim: faultIter}),
		train.WithReviveAfter(map[int]int{victim: faultIter + 1}),
		train.WithHealReadmit(), // no scripted Readmit: the monitor must earn it
		train.WithOnIteration(func(i int, st train.IterStats) {
			iters = append(iters, st)
			if !healedSeen && m.Healed() > 0 {
				healedSeen = true
				fmt.Printf("t=%-8v monitor healed rank %d (probation passed); group back to %d workers\n",
					env.Engine.Now().Round(time.Millisecond), victim, len(driver.Alive()))
			}
		}))
	if err != nil {
		return err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	mean := func(from, to int) time.Duration {
		var sum time.Duration
		for _, it := range iters[from:to] {
			sum += it.Total
		}
		return sum / time.Duration(to-from)
	}
	pre := mean(2, faultIter)              // full group, warmed up
	post := mean(len(iters)-6, len(iters)) // full group again, healed
	recovery := pre.Seconds() / post.Seconds() * 100

	fmt.Printf("\ncompleted %d/%d iterations; final group: %v (healed=%d, condemned=%d)\n",
		len(stats.Iters), iterations, driver.Alive(), m.Healed(), m.Condemned())
	fmt.Printf("iteration time: %v pre-fault -> %v post-heal (throughput recovered to %.1f%%)\n",
		pre.Round(time.Millisecond), post.Round(time.Millisecond), recovery)
	fmt.Println("\nnobody called Readmit: the health monitor probed the device out of")
	fmt.Println("quarantine, re-profiled its links, and the cost model absorbed the result.")
	return nil
}

// Elastic scale-down AND scale-up: a worker crashes mid-training, AdapCC
// excludes it (T_fault, Sec. IV-C(2)) and keeps going on 7 GPUs; the worker
// comes back later and is readmitted into the very next iteration — no
// checkpoint, no process-group rebuild, no NCCL communicator re-init. The
// data loader re-redistributes both ways so the global batch never changes.
//
// Run with: go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl, err := cluster.Homogeneous(topology.TransportRDMA, 2, 4)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, 23)
	if err != nil {
		return err
	}
	a, err := core.New(env, core.Options{})
	if err != nil {
		return err
	}
	a.Setup(func() {})
	env.Engine.Run()

	w := train.VGG16()
	const (
		crashIter  = 8
		reviveIter = 20
		iterations = 30
	)
	leaver := env.AllRanks()[6]

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil,
		func(faulty []int) {
			fmt.Printf("t=%-8v coordinator declared %v faulty; continuing on %d workers\n",
				env.Engine.Now().Round(time.Millisecond), faulty, len(env.AllRanks())-len(faulty))
		})
	if err != nil {
		return err
	}

	fmt.Printf("training VGG16 on 8 GPUs; rank %d leaves at iteration %d and returns at %d\n\n",
		leaver, crashIter, reviveIter)

	worldLog := make([]int, iterations)
	tr, err := train.NewTrainer(train.Config{
		Workload: w, Env: env, Cluster: cl, Driver: driver,
		Iterations:  iterations,
		BatchPerGPU: 64,
		Seed:        23,
		DeadAfter:   map[int]int{leaver: crashIter},
		ReviveAfter: map[int]int{leaver: reviveIter},
		OnIteration: func(i int, _ train.IterStats) {
			worldLog[i] = len(driver.Alive())
			switch i {
			case crashIter - 1, crashIter + 3, reviveIter, iterations - 1:
				fmt.Printf("t=%-8v iteration %2d: %d workers in the group\n",
					env.Engine.Now().Round(time.Millisecond), i, len(driver.Alive()))
			}
		},
	})
	if err != nil {
		return err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()

	fmt.Printf("\ncompleted %d/%d iterations; final group: %v\n",
		len(stats.Iters), iterations, driver.Alive())
	fmt.Printf("global batch stayed %d throughout: per-GPU batch 64 -> %d (7 workers) -> 64 again\n",
		stats.GlobalBatch, (stats.GlobalBatch+6)/7)
	fmt.Println("\nwith NCCL, both membership changes would be checkpoint+restart events")
	fmt.Println("(Fig. 19c prices one at 3.5-5.3 s); AdapCC's coordinator handled both live.")
	return nil
}

// Heterogeneous training: data-parallel VGG16 on the paper's mixed
// testbed (two A100 servers + two V100 servers) comparing AdapCC's
// adaptive relay control against wait-for-all NCCL — the Fig. 14
// heterogeneous scenario, where V100 workers straggle structurally and
// AdapCC overlaps partial communication with their compute.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/cluster"
	"adapcc/internal/core"
	"adapcc/internal/strategy"
	"adapcc/internal/topology"
	"adapcc/internal/train"
)

const iterations = 60

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w := train.VGG16()

	adapccStats, relayStats, err := trainAdapCC(w)
	if err != nil {
		return err
	}
	ncclStats, err := trainNCCL(w)
	if err != nil {
		return err
	}

	fmt.Printf("VGG16 on 2xA100 + 2xV100 servers, %d iterations:\n\n", iterations)
	fmt.Printf("%-10s %14s %14s %14s\n", "backend", "comm/iter", "iter time", "throughput")
	print := func(name string, s *train.Stats) {
		fmt.Printf("%-10s %14v %14v %11.0f im/s\n", name,
			s.MeanComm().Round(time.Millisecond),
			(s.Makespan / time.Duration(len(s.Iters))).Round(time.Millisecond),
			s.Throughput())
	}
	print("AdapCC", adapccStats)
	print("NCCL", ncclStats)
	fmt.Printf("\ncommunication speed-up: %.2fx\n",
		ncclStats.MeanComm().Seconds()/adapccStats.MeanComm().Seconds())
	fmt.Printf("AdapCC iterations split: %d waited for everyone, %d used phase-1/phase-2 relay control\n",
		relayStats.FullRuns(), relayStats.PartialRuns())

	fmt.Println("\nrelay selection probability (V100 stragglers relay most):")
	for rank := 0; rank < 16; rank++ {
		kind := "A100"
		if rank >= 8 {
			kind = "V100"
		}
		fmt.Printf("  rank %2d (%s): %5.1f%%\n", rank, kind, 100*relayStats.RelayProbability(rank))
	}
	return nil
}

func trainAdapCC(w train.Workload) (*train.Stats, interface {
	RelayProbability(int) float64
	FullRuns() int
	PartialRuns() int
}, error) {
	cl, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, nil, err
	}
	env, err := backend.NewEnv(cl, 9)
	if err != nil {
		return nil, nil, err
	}
	a, err := core.New(env)
	if err != nil {
		return nil, nil, err
	}
	a.Setup(func() {})
	env.Engine.Run()

	driver, err := train.NewAdaptiveDriver(a, env.AllRanks(), strategy.AllReduce, w.ParamBytes, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	stats, err := runTrainer(env, cl, w, driver)
	if err != nil {
		return nil, nil, err
	}
	return stats, statsView{driver}, nil
}

func trainNCCL(w train.Workload) (*train.Stats, error) {
	cl, err := cluster.Heterogeneous(topology.TransportRDMA, 4)
	if err != nil {
		return nil, err
	}
	env, err := backend.NewEnv(cl, 9)
	if err != nil {
		return nil, err
	}
	driver := train.NewWaitAllDriver(env, train.NCCLPlanner(env), strategy.AllReduce, w.ParamBytes, env.AllRanks())
	return runTrainer(env, cl, w, driver)
}

func runTrainer(env *backend.Env, cl *topology.Cluster, w train.Workload, driver train.Driver) (*train.Stats, error) {
	tr, err := train.New(w, env, cl, driver, iterations, train.WithSeed(9))
	if err != nil {
		return nil, err
	}
	var stats *train.Stats
	tr.Start(func(s *train.Stats) { stats = s })
	env.Engine.Run()
	return stats, nil
}

// statsView adapts the adaptive driver's coordinator stats for printing.
type statsView struct {
	d *train.AdaptiveDriver
}

func (v statsView) RelayProbability(rank int) float64 {
	s := v.d.Coordinator().Stats()
	return s.RelayProbability(rank)
}
func (v statsView) FullRuns() int    { return v.d.Coordinator().Stats().FullRuns }
func (v statsView) PartialRuns() int { return v.d.Coordinator().Stats().PartialRuns }

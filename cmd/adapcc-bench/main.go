// Command adapcc-bench regenerates the paper's evaluation figures on the
// simulated testbed.
//
// Usage:
//
//	adapcc-bench -experiment fig12            # one figure
//	adapcc-bench -experiment all              # every figure + summary
//	adapcc-bench -experiment fig12 -bytes 268435456 -seed 7
//	adapcc-bench -list
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adapcc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adapcc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adapcc-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "experiment id (see -list) or 'all'")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		seed       = fs.Int64("seed", 1, "simulation seed")
		bytes      = fs.Int64("bytes", 32<<20, "collective payload for the micro-benchmarks")
		iters      = fs.Int("iterations", 0, "override training iteration counts (0 = per-experiment default)")
		quick      = fs.Bool("quick", false, "shrink workloads for a fast pass")
		format     = fs.String("format", "table", "output format: table | csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	cfg := experiments.Config{
		Seed:       *seed,
		Bytes:      *bytes,
		Iterations: *iters,
		Quick:      *quick,
	}

	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", table.ID, table.Title)
			if err := table.FormatCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		table.Format(os.Stdout)
		fmt.Printf("  (%s regenerated in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleQuickExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-experiment", "fig1", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-experiment", "fig1", "-format", "nope"}); err == nil {
		t.Error("unknown format accepted")
	}
}

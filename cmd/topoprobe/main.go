// Command topoprobe runs AdapCC's Detector and Profiler standalone and
// dumps the inferred logical topology with its measured α–β link
// properties — the information the synthesizer consumes.
//
// Usage:
//
//	topoprobe -case "A100:(4,4) V100:(4,4)" -transport tcp
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/detect"
	"adapcc/internal/fabric"
	"adapcc/internal/profile"
	"adapcc/internal/sim"
	"adapcc/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoprobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoprobe", flag.ContinueOnError)
	var (
		caseName  = fs.String("case", "A100:(4,4) V100:(4,4)", "GPU allocation")
		transport = fs.String("transport", "rdma", "rdma | tcp")
		seed      = fs.Int64("seed", 1, "simulation seed")
		dotOut    = fs.String("dot", "", "write the inferred topology as Graphviz DOT to this file")
		jsonOut   = fs.String("json", "", "write the profiled α–β report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tp := topology.TransportRDMA
	if *transport == "tcp" {
		tp = topology.TransportTCP
	}
	bc, err := cluster.ParseCase(*caseName)
	if err != nil {
		return err
	}
	cl, err := bc.Build(tp)
	if err != nil {
		return err
	}

	// Stage 1: detection (Sec. IV-A).
	res, err := detect.Detect(cl, detect.NewHardwareProber(cl, rand.New(rand.NewSource(*seed))))
	if err != nil {
		return err
	}
	fmt.Printf("detected %d servers in %v (concurrent per server):\n",
		len(res.Layouts), res.InferenceTime.Round(time.Millisecond))
	for si, l := range res.Layouts {
		fmt.Printf("  server %d: NIC NUMA affinity %v, PCIe switch groups %v\n",
			si, l.NICAffinityNuma, l.SwitchGroups)
		for g, shares := range l.GPUSharesNICSwitch {
			for nic, sh := range shares {
				if sh {
					fmt.Printf("    gpu %d shares a PCIe switch with nic %d\n", g, nic)
				}
			}
		}
	}

	// Stage 2: profiling (Sec. IV-B) over the live fabric.
	eng := sim.NewEngine(*seed)
	fab := fabric.New(eng, res.Graph)
	var report *profile.Report
	profile.New(fab, profile.Options{}).Run(func(r *profile.Report) { report = r })
	eng.Run()
	if report == nil {
		return fmt.Errorf("profiling never completed")
	}
	fmt.Printf("\nprofiled %d links in %v (training blocked meanwhile):\n",
		len(report.ByEdge), report.Duration().Round(time.Millisecond))

	ids := make([]int, 0, len(report.ByEdge))
	for eid := range report.ByEdge {
		ids = append(ids, int(eid))
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := report.ByEdge[topology.EdgeID(id)]
		e := res.Graph.Edge(m.Edge)
		fmt.Printf("  %-28s %-7s alpha=%-9v bw=%7.2f GB/s",
			fmt.Sprintf("%v -> %v", res.Graph.Node(e.From), res.Graph.Node(e.To)),
			e.Type, m.Alpha.Round(100*time.Nanosecond), m.StreamBps/1e9)
		if m.AggregateBps > m.StreamBps*1.05 {
			fmt.Printf("  (aggregate %.2f GB/s with parallel streams)", m.AggregateBps/1e9)
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(res.Graph, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nprofile JSON -> %s\n", *jsonOut)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		if err := res.Graph.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntopology DOT -> %s (render: dot -Tsvg %s -o topo.svg)\n", *dotOut, *dotOut)
	}
	return nil
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallCluster(t *testing.T) {
	if err := run([]string{"-case", "A100:(2) V100:(2)", "-transport", "tcp"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadCase(t *testing.T) {
	if err := run([]string{"-case", "bogus"}); err == nil {
		t.Fatal("bad case accepted")
	}
}

func TestRunWritesDOT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "topo.dot")
	if err := run([]string{"-case", "A100:(2,2)", "-dot", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	dot := string(data)
	if !strings.HasPrefix(dot, "digraph topology {") {
		t.Errorf("not a DOT digraph: %.40q", dot)
	}
	if !strings.Contains(dot, "core switch") {
		t.Error("multi-server DOT lacks the core switch")
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "profile.json")
	if err := run([]string{"-case", "A100:(2,2)", "-transport", "tcp", "-json", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ProfilingMs float64 `json:"profiling_ms"`
		Edges       []struct {
			From         string  `json:"from"`
			Type         string  `json:"type"`
			StreamBps    float64 `json:"stream_bps"`
			AggregateBps float64 `json:"aggregate_bps"`
		} `json:"edges"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("JSON report unparseable: %v", err)
	}
	if rep.ProfilingMs <= 0 {
		t.Error("no profiling duration")
	}
	if len(rep.Edges) == 0 {
		t.Fatal("no edges in the report")
	}
	sawCappedTCP := false
	for _, e := range rep.Edges {
		if e.StreamBps <= 0 {
			t.Errorf("edge %s has no bandwidth", e.From)
		}
		if e.Type == "tcp" && e.AggregateBps > e.StreamBps*1.5 {
			sawCappedTCP = true
		}
	}
	if !sawCappedTCP {
		t.Error("TCP links should show aggregate bandwidth above the per-stream cap")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultCase(t *testing.T) {
	if err := run([]string{"-case", "A100:(2) V100:(2)", "-bytes", "4194304", "-m", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlltoAllWithXML(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-primitive", "alltoall", "-bytes", "1048576", "-xml"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-primitive", "nope"},
		{"-case", "H100:(4)"},
		{"-case", "garbage"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithSketch(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "1048576", "-verify",
		"-sketch", "leaders=0,2;cut=server;chunk=262144"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSketch(t *testing.T) {
	for _, args := range [][]string{
		{"-case", "A100:(2,2)", "-sketch", "ring=sideways"},              // malformed
		{"-case", "A100:(2,2)", "-sketch", "cut=server;allow=flat-star"}, // infeasible
		{"-topo", "rail:groups=2", "-sketch", "cut=server"},              // wrong pipeline
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunWithChaosSchedule(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "1048576",
		"-chaos", "seed=3;down@1ms+3ms:edge=0;straggler@0s+20ms:rank=1,stall=200us"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadChaosSpec(t *testing.T) {
	for _, spec := range []string{
		"explode@1ms:edge=0", // unknown kind
		"down@1ms:edge=999",  // edge out of range, caught at Arm
		"crash@1ms:rank=99",  // unknown rank, caught at Arm
	} {
		if err := run([]string{"-case", "A100:(2,2)", "-chaos", spec}); err == nil {
			t.Errorf("chaos spec %q accepted", spec)
		}
	}
}

func TestParsePrimitive(t *testing.T) {
	for _, name := range []string{"reduce", "broadcast", "allreduce", "alltoall"} {
		if _, err := parsePrimitive(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	if _, err := parsePrimitive("allgather"); err == nil {
		t.Error("unknown primitive accepted")
	}
}

func TestRunWritesMetricsJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "4194304", "-metrics", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	names := make(map[string]bool, len(snap.Families))
	for _, f := range snap.Families {
		names[f.Name] = true
	}
	for _, want := range []string{
		"adapcc_link_bytes_total", "adapcc_gpu_kernels_total", "adapcc_chunk_hops_total",
	} {
		if !names[want] {
			t.Errorf("family %s missing from JSON export", want)
		}
	}
}

func TestRunWritesMetricsPrometheus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "4194304", "-metrics", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE adapcc_link_bytes_total counter",
		"# TYPE adapcc_chunk_hop_seconds histogram",
		"adapcc_chunk_hop_seconds_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}
}

func TestRunWritesTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "4194304", "-trace", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var nets int
	for _, rec := range records {
		if rec["cat"] == "net" {
			nets++
		}
	}
	if nets == 0 {
		t.Error("trace holds no transfer events")
	}
}

func TestRunWithHealing(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-bytes", "1048576",
		"-chaos", "seed=3;down@0s+400ms:edge=0;down@0s+400ms:edge=1",
		"-heal", "quarantine=2ms,probe=1ms,k=3,giveup=50,maxq=20ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHealRequiresChaos(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-heal", "k=3"}); err == nil {
		t.Error("-heal without -chaos accepted")
	}
}

func TestRunRejectsBadHealSpec(t *testing.T) {
	for _, spec := range []string{
		"quarantine=later", // unparseable duration
		"verve=3",          // unknown key
		"k",                // not key=value
	} {
		if err := run([]string{"-case", "A100:(2,2)",
			"-chaos", "down@1ms+2ms:edge=0", "-heal", spec}); err == nil {
			t.Errorf("heal spec %q accepted", spec)
		}
	}
}

func TestHealSpecRoundTrip(t *testing.T) {
	const spec = "quarantine=2ms,probe=500µs,k=3,bytes=65536,giveup=6,backoff=2,maxq=500ms"
	opts, err := parseHealSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := healSpecString(opts); got != spec {
		t.Fatalf("round trip: %q -> %q", spec, got)
	}
	reopts, err := parseHealSpec(healSpecString(opts))
	if err != nil {
		t.Fatal(err)
	}
	if healSpecString(reopts) != spec {
		t.Fatalf("re-parse drifted: %+v vs %+v", reopts, opts)
	}
}

func TestRunScaleTopo(t *testing.T) {
	if err := run([]string{"-topo", "rail:groups=2,servers=2,rails=2", "-workers", "2", "-bytes", "65536"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaleTopoMetrics(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scale.json")
	if err := run([]string{"-topo", "fattree:pods=2,servers=2,gpus=2,spines=1",
		"-bytes", "65536", "-metrics", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics output is not JSON: %v", err)
	}
	if !strings.Contains(string(data), "adapcc_engine_events_fired_total") {
		t.Error("metrics JSON missing engine stats")
	}
}

func TestRunScaleTopoRejectsBadSpec(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "mesh:servers=4"},
		{"-topo", "rail:groups=2", "-hybrid", "2x2x2"},
		// Healing without faults: nothing is ever excluded.
		{"-topo", "rail:groups=2", "-heal", "quarantine=1ms"},
		// Kernel-model fault kinds have no sharded implementation.
		{"-topo", "rail:groups=2", "-chaos", "hang@1ms+1ms:rank=0"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunScaleTopoChaosHeal: the fault/heal flags compose with -topo — a
// bounded link kill recovers and heals on the sharded fabric.
func TestRunScaleTopoChaosHeal(t *testing.T) {
	if err := run([]string{"-topo", "rail:groups=2",
		"-chaos", "seed=1;down@1ms+1ms:edge=0",
		"-heal", "quarantine=1ms,probe=500us,k=2"}); err != nil {
		t.Fatalf("chaos+heal with -topo rejected: %v", err)
	}
}

// TestRunScaleTopoCongest: the congestion plane composes with -topo and a
// congestion-kind chaos schedule; iterations run under the barrier.
func TestRunScaleTopoCongest(t *testing.T) {
	if err := run([]string{"-topo", "fattree:pods=2,servers=2,gpus=4,spines=2",
		"-congest", "iters=2,interval=100us",
		"-chaos", "seed=7;pfcstorm@0s+1ms:edge=24"}); err != nil {
		t.Fatalf("-congest with -topo rejected: %v", err)
	}
}

func TestRunCongestRequiresTopo(t *testing.T) {
	if err := run([]string{"-case", "A100:(2,2)", "-congest", "adaptive=true"}); err == nil {
		t.Error("-congest without -topo accepted")
	}
}

func TestRunRejectsBadCongestSpec(t *testing.T) {
	for _, spec := range []string{
		"adaptive=perhaps", // unparseable bool
		"verve=3",          // unknown key
		"pause",            // not key=value
	} {
		if err := run([]string{"-topo", "rail:groups=2", "-congest", spec}); err == nil {
			t.Errorf("congest spec %q accepted", spec)
		}
	}
}

func TestCongestSpecRoundTrip(t *testing.T) {
	const spec = "adaptive=false,iters=8,pfc=1048576,release=524288,pause=0.02,knee=524288,floor=0.5,interval=200µs,below=0.55,above=0.85,after=3,minq=65536"
	cs, iters, err := parseCongestSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := congestSpecString(cs, iters); got != spec {
		t.Fatalf("round trip: %q -> %q", spec, got)
	}
}

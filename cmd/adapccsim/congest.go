package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"adapcc/internal/scale"
)

// parseCongestSpec parses the -congest flag grammar: comma-separated
// key=value knobs of the congestion plane and its gray-failure detector,
// e.g.
//
//	adaptive=true,iters=8,pause=0.02,pfc=1048576,interval=200us,after=3
//
// Omitted keys take the fabric/grayfail package defaults. An empty spec
// ("-congest=") enables the plane with all defaults, adaptive. Returns the
// spec plus the iteration count (0 = caller default).
func parseCongestSpec(s string) (scale.CongestSpec, int, error) {
	cs := scale.CongestSpec{Adaptive: true}
	iters := 0
	if strings.TrimSpace(s) == "" {
		return cs, iters, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cs, iters, fmt.Errorf("congest spec: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "adaptive":
			cs.Adaptive, err = strconv.ParseBool(v)
		case "iters":
			iters, err = strconv.Atoi(v)
		case "pfc":
			cs.Fabric.PFCThreshold, err = strconv.ParseInt(v, 10, 64)
		case "release":
			cs.Fabric.PFCRelease, err = strconv.ParseInt(v, 10, 64)
		case "pause":
			cs.Fabric.PauseScale, err = strconv.ParseFloat(v, 64)
		case "knee":
			cs.Fabric.DegradeKnee, err = strconv.ParseInt(v, 10, 64)
		case "floor":
			cs.Fabric.DegradeFloor, err = strconv.ParseFloat(v, 64)
		case "interval":
			cs.Detect.Interval, err = time.ParseDuration(v)
		case "below":
			cs.Detect.DegradeBelow, err = strconv.ParseFloat(v, 64)
		case "above":
			cs.Detect.RecoverAbove, err = strconv.ParseFloat(v, 64)
		case "after":
			cs.Detect.DegradeAfter, err = strconv.Atoi(v)
		case "minq":
			cs.Detect.MinQueueBytes, err = strconv.ParseInt(v, 10, 64)
		default:
			return cs, iters, fmt.Errorf("congest spec: unknown key %q", k)
		}
		if err != nil {
			return cs, iters, fmt.Errorf("congest spec: %s: %v", k, err)
		}
	}
	return cs, iters, nil
}

// congestSpecString renders a spec back in the grammar parseCongestSpec
// accepts (only the keys that differ from the defaults-taking zero value,
// plus the always-meaningful adaptive bit).
func congestSpecString(cs scale.CongestSpec, iters int) string {
	parts := []string{fmt.Sprintf("adaptive=%v", cs.Adaptive)}
	if iters > 0 {
		parts = append(parts, fmt.Sprintf("iters=%d", iters))
	}
	if cs.Fabric.PFCThreshold > 0 {
		parts = append(parts, fmt.Sprintf("pfc=%d", cs.Fabric.PFCThreshold))
	}
	if cs.Fabric.PFCRelease > 0 {
		parts = append(parts, fmt.Sprintf("release=%d", cs.Fabric.PFCRelease))
	}
	if cs.Fabric.PauseScale > 0 {
		parts = append(parts, fmt.Sprintf("pause=%g", cs.Fabric.PauseScale))
	}
	if cs.Fabric.DegradeKnee > 0 {
		parts = append(parts, fmt.Sprintf("knee=%d", cs.Fabric.DegradeKnee))
	}
	if cs.Fabric.DegradeFloor > 0 {
		parts = append(parts, fmt.Sprintf("floor=%g", cs.Fabric.DegradeFloor))
	}
	if cs.Detect.Interval > 0 {
		parts = append(parts, fmt.Sprintf("interval=%s", cs.Detect.Interval))
	}
	if cs.Detect.DegradeBelow > 0 {
		parts = append(parts, fmt.Sprintf("below=%g", cs.Detect.DegradeBelow))
	}
	if cs.Detect.RecoverAbove > 0 {
		parts = append(parts, fmt.Sprintf("above=%g", cs.Detect.RecoverAbove))
	}
	if cs.Detect.DegradeAfter > 0 {
		parts = append(parts, fmt.Sprintf("after=%d", cs.Detect.DegradeAfter))
	}
	if cs.Detect.MinQueueBytes > 0 {
		parts = append(parts, fmt.Sprintf("minq=%d", cs.Detect.MinQueueBytes))
	}
	return strings.Join(parts, ",")
}

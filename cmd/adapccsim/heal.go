package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"adapcc/internal/health"
)

// parseHealSpec parses the -heal flag grammar: comma-separated key=value
// knobs of the healing state machine, e.g.
//
//	quarantine=2ms,probe=500us,k=3,bytes=65536,giveup=6,backoff=2,maxq=500ms
//
// Omitted keys take the health package defaults. An empty spec ("on" seen
// as just "-heal=") enables healing with all defaults.
func parseHealSpec(s string) (health.Options, error) {
	var o health.Options
	if strings.TrimSpace(s) == "" {
		return o, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return o, fmt.Errorf("heal spec: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "quarantine":
			o.Quarantine, err = time.ParseDuration(v)
		case "probe":
			o.ProbeInterval, err = time.ParseDuration(v)
		case "k":
			o.ProbationK, err = strconv.Atoi(v)
		case "bytes":
			o.ProbeBytes, err = strconv.ParseInt(v, 10, 64)
		case "giveup":
			o.GiveUpAfter, err = strconv.Atoi(v)
		case "backoff":
			o.BackoffFactor, err = strconv.ParseFloat(v, 64)
		case "maxq":
			o.MaxQuarantine, err = time.ParseDuration(v)
		default:
			return o, fmt.Errorf("heal spec: unknown key %q", k)
		}
		if err != nil {
			return o, fmt.Errorf("heal spec: %s: %v", k, err)
		}
	}
	return o, nil
}

// healSpecString renders options back in the grammar parseHealSpec
// accepts (only the keys that differ from the zero value).
func healSpecString(o health.Options) string {
	var parts []string
	if o.Quarantine > 0 {
		parts = append(parts, fmt.Sprintf("quarantine=%s", o.Quarantine))
	}
	if o.ProbeInterval > 0 {
		parts = append(parts, fmt.Sprintf("probe=%s", o.ProbeInterval))
	}
	if o.ProbationK > 0 {
		parts = append(parts, fmt.Sprintf("k=%d", o.ProbationK))
	}
	if o.ProbeBytes > 0 {
		parts = append(parts, fmt.Sprintf("bytes=%d", o.ProbeBytes))
	}
	if o.GiveUpAfter > 0 {
		parts = append(parts, fmt.Sprintf("giveup=%d", o.GiveUpAfter))
	}
	if o.BackoffFactor > 0 {
		parts = append(parts, fmt.Sprintf("backoff=%g", o.BackoffFactor))
	}
	if o.MaxQuarantine > 0 {
		parts = append(parts, fmt.Sprintf("maxq=%s", o.MaxQuarantine))
	}
	return strings.Join(parts, ",")
}

// describeHealEvent renders one monitor event for the console.
func describeHealEvent(verb string, ev health.Event) string {
	target := fmt.Sprintf("link %d-%d", ev.From, ev.To)
	if ev.Kind == health.KindRank {
		target = fmt.Sprintf("rank %d", ev.Rank)
	}
	return fmt.Sprintf("heal: %s %s after %v (%d probes, %d relapses)",
		target, verb, ev.TimeToHeal.Round(time.Microsecond), ev.Probes, ev.Relapses)
}

// Command adapccsim runs one collective through the full AdapCC pipeline —
// topology detection, link profiling, strategy synthesis, and execution on
// the simulated fabric — and prints the synthesised strategy (as the XML
// the Communicator parses), the predicted completion time, and the
// measured one.
//
// Usage:
//
//	adapccsim -case "A100:(4,4) V100:(4,4)" -primitive allreduce -bytes 67108864
//	adapccsim -case "A100:(4,4,4,4)" -primitive alltoall -transport tcp -m 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adapcc/internal/backend"
	"adapcc/internal/chaos"
	"adapcc/internal/cluster"
	"adapcc/internal/collective"
	"adapcc/internal/comm"
	"adapcc/internal/core"
	"adapcc/internal/health"
	"adapcc/internal/metrics"
	"adapcc/internal/payload"
	"adapcc/internal/scale"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
	"adapcc/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adapccsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adapccsim", flag.ContinueOnError)
	var (
		caseName   = fs.String("case", "A100:(4,4) V100:(4,4)", "GPU allocation, e.g. \"A100:(4,4,4,4) V100:(4,4)\"")
		primName   = fs.String("primitive", "allreduce", "reduce | broadcast | allreduce | alltoall")
		transport  = fs.String("transport", "rdma", "rdma | tcp")
		bytes      = fs.Int64("bytes", 64<<20, "per-GPU tensor size")
		m          = fs.Int("m", 4, "parallel sub-collectives M")
		seed       = fs.Int64("seed", 1, "simulation seed")
		dumpXML    = fs.Bool("xml", false, "print the full strategy XML")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON of the execution to this file (open in chrome://tracing or Perfetto)")
		dotOut     = fs.String("dot", "", "write the synthesised strategy as Graphviz DOT to this file")
		chaosSpec  = fs.String("chaos", "", "fault schedule to inject, e.g. \"seed=7;down@2ms+10ms:edge=3;crash@5ms:rank=2\" (kinds: down flap degrade loss hold crash hang straggler); the collective runs with detect/retransmit/re-synthesize recovery")
		healSpec   = fs.String("heal", "", "enable background healing of excluded links/ranks (requires -chaos); knobs as \"quarantine=2ms,probe=500us,k=3,bytes=65536,giveup=6,backoff=2,maxq=500ms\" (empty value = defaults); healed targets are re-admitted and a post-heal collective reports the reclaimed topology")
		metricsOut = fs.String("metrics", "", "write the virtual-time metrics registry to this file (.json gets a JSON snapshot, anything else the Prometheus text format)")
		hybridSpec = fs.String("hybrid", "", "run a hybrid-parallel communicator-group demo instead of a single collective: \"DPxTPxPP\" (e.g. \"2x2x2\"); every group runs one -bytes collective concurrently on the shared fabric")
		topoSpec   = fs.String("topo", "", "run a datacenter-scale AllReduce sweep on a generated topology instead of the testbed pipeline: \"fattree:pods=8,servers=4\", \"rail:groups=16,servers=8,rails=8\" or \"multinic:servers=32,group=8\"; each pod/group is one simulation domain of the partitioned event engine")
		congSpec   = fs.String("congest", "", "enable the in-fabric congestion plane and gray-failure detection on a -topo sweep; knobs as \"adaptive=true,iters=8,pause=0.02,pfc=1048576,interval=200us,below=0.55,after=3\" (empty value = defaults, adaptive); composes with -chaos congestion kinds (incast, hashcollide, pfcstorm) and -heal")
		sketchSpec = fs.String("sketch", "", "guide synthesis with a communication sketch, e.g. \"leaders=0,4;ring=desc;cut=server;allow=hier-star,server-chain;chunk=4194304\" — hints only prune the candidate space (never add to it); an infeasible sketch fails loudly instead of silently falling back to the full search")
		workers    = fs.Int("workers", 1, "worker-pool size for the partitioned engine (with -topo); results are bit-identical for any value")
		verify     = fs.Bool("verify", false, "lower every synthesised strategy to the chunk-level IR and prove it correct before executing (send/recv matching, no use-before-receive, no double reduction, exact postconditions); prints a verification summary and exits non-zero on rejection")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	healSet, congSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "heal":
			healSet = true
		case "congest":
			congSet = true
		}
	})
	if healSet && *chaosSpec == "" {
		return fmt.Errorf("-heal requires -chaos (healing re-admits what the fault path excluded)")
	}
	if congSet && *topoSpec == "" {
		return fmt.Errorf("-congest requires -topo (the congestion plane lives on the sharded fabric)")
	}
	if *topoSpec != "" {
		if *hybridSpec != "" {
			return fmt.Errorf("-topo is mutually exclusive with -hybrid")
		}
		if *sketchSpec != "" {
			return fmt.Errorf("-sketch guides the synthesis pipeline; the -topo sweep uses fixed hierarchical rings")
		}
		var heal *health.Options
		if healSet {
			hopts, err := parseHealSpec(*healSpec)
			if err != nil {
				return err
			}
			heal = &hopts
		}
		var congest *scale.CongestSpec
		iters := 0
		if congSet {
			cs, n, err := parseCongestSpec(*congSpec)
			if err != nil {
				return err
			}
			congest, iters = &cs, n
			fmt.Printf("congest: plane armed (%s)\n", congestSpecString(cs, n))
		}
		return runScale(*topoSpec, *workers, *bytes, *seed, *chaosSpec, heal, congest, iters, *metricsOut)
	}
	if *hybridSpec != "" && *chaosSpec != "" {
		return fmt.Errorf("-hybrid and -chaos are mutually exclusive")
	}

	prim, err := parsePrimitive(*primName)
	if err != nil {
		return err
	}
	tp := topology.TransportRDMA
	if *transport == "tcp" {
		tp = topology.TransportTCP
	}
	bc, err := cluster.ParseCase(*caseName)
	if err != nil {
		return err
	}
	cl, err := bc.Build(tp)
	if err != nil {
		return err
	}
	env, err := backend.NewEnv(cl, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("cluster: %s over %s (%d GPUs on %d servers)\n",
		bc.Name, tp, cl.NumGPUs(), len(cl.Servers))

	copts := []core.Option{core.WithM(*m)}
	if *verify {
		copts = append(copts, core.WithVerify())
	}
	if *sketchSpec != "" {
		sk, err := synth.ParseSketch(*sketchSpec)
		if err != nil {
			return err
		}
		copts = append(copts, core.WithSketch(sk))
		fmt.Printf("sketch: %s\n", sk.Fingerprint())
	}
	a, err := core.New(env, copts...)
	if err != nil {
		return err
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.New()
		a.SetMetrics(reg)
	}
	fmt.Printf("topology inference: %v (constant in job scale, concurrent per server)\n",
		a.InitTime().Round(time.Millisecond))

	var setupOverhead time.Duration
	a.Reconstruct(func(d time.Duration) { setupOverhead = d })
	env.Engine.Run()
	prof, _, setup := a.Overheads()
	fmt.Printf("setup: %v total (profiling %v, context set-up %v)\n",
		setupOverhead.Round(time.Millisecond), prof.Round(time.Millisecond), setup.Round(time.Millisecond))

	if *hybridSpec != "" {
		if err := runHybrid(env, a, *hybridSpec, *bytes); err != nil {
			return err
		}
		return writeMetrics(reg, *metricsOut)
	}

	root := -1
	if prim == strategy.Reduce || prim == strategy.Broadcast {
		root = 0
	}
	res, err := a.Strategy(prim, *bytes, nil, nil, root)
	if err != nil {
		return err
	}
	fmt.Printf("strategy: %s variant, M=%d sub-collectives, predicted %v\n",
		res.Variant, len(res.Strategy.SubCollectives), res.Eval.Time.Round(time.Microsecond))
	for _, sc := range res.Strategy.SubCollectives {
		fmt.Printf("  sub %d: %d bytes, %d chunks of %d KiB, root rank %d, %d flows\n",
			sc.ID, sc.Bytes, sc.Chunks(), sc.ChunkBytes>>10, sc.Root, len(sc.Flows))
	}
	if *verify {
		prog, err := core.VerifyStrategy(res.Strategy, false)
		if err != nil {
			return fmt.Errorf("verification rejected the synthesised strategy: %w", err)
		}
		st := prog.Stats()
		fmt.Printf("verified: %s schedule proven correct — %d ranks, %d chunks, %d steps; %d sends, %d recvs, %d reduces, %d copies\n",
			prog.Collective, st.Ranks, st.Chunks, st.Steps, st.Sends, st.Recvs, st.Reduces, st.Copies)
	}
	if *dumpXML {
		xml, err := res.Strategy.MarshalXMLBytes()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", xml)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		if err := res.Strategy.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("strategy DOT -> %s\n", *dotOut)
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New()
		env.Exec.SetTracer(tracer)
	}

	inputs := backend.MakeInputs(env.AllRanks(), *bytes)
	var measured time.Duration
	var stats collective.StatsReport
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		ch := chaos.New(env.Engine, env.Fabric, env.GPUs, spec)
		if tracer != nil {
			ch.SetTracer(tracer)
		}
		if reg != nil {
			ch.SetMetrics(reg)
		}
		if err := ch.Arm(); err != nil {
			if errors.Is(err, chaos.ErrUnsupportedKind) {
				return fmt.Errorf("%w\n(congestion kinds — incast, hashcollide, pfcstorm — need the congestion plane: run a -topo sweep with -congest)", err)
			}
			return err
		}
		fmt.Printf("chaos: armed %d fault(s), seed %d\n", len(spec.Faults), spec.Seed)
		var ropts []core.ResilientOption
		healed := 0
		if healSet {
			hopts, err := parseHealSpec(*healSpec)
			if err != nil {
				return err
			}
			fmt.Printf("heal: monitor armed (%s)\n", healSpecString(hopts))
			ropts = append(ropts, core.WithHeal(core.HealOptions{
				Options: hopts,
				OnHeal: func(ev health.Event) {
					healed++
					fmt.Println(describeHealEvent("re-admitted", ev))
				},
				OnCondemn: func(ev health.Event) {
					fmt.Println(describeHealEvent("condemned", ev))
				},
			}))
		}
		var rres core.ResilientResult
		var rerr error
		err = a.RunResilient(backend.Request{
			Primitive: prim, Bytes: *bytes, Root: root, Inputs: inputs,
		}, func(r core.ResilientResult, err error) { rres, rerr = r, err }, ropts...)
		if err != nil {
			return err
		}
		env.Engine.Run()
		for _, ev := range rres.Events {
			fmt.Printf("chaos: attempt %d faulted (%v); excluded pair %v, ranks %v; retried via %s synthesis after %v overhead\n",
				ev.Attempt+1, ev.Report, ev.ExcludedPair, ev.ExcludedRanks, ev.Ladder,
				ev.Overhead.Round(time.Millisecond))
		}
		cnt := ch.Counters()
		rec := env.Exec.RecoveryStats()
		fmt.Printf("chaos: injected %d scale events, %d drops, %d holds, %d kernel stalls\n",
			cnt.ScaleEvents, cnt.Drops, cnt.Holds, cnt.KernelStalls)
		fmt.Printf("recovery: %d deadlines, %d retransmits, %d link faults, %d stall faults\n",
			rec.Deadlines, rec.Retransmits, rec.LinkFaults, rec.StallFaults)
		if rerr != nil {
			return fmt.Errorf("collective did not survive the schedule: %w", rerr)
		}
		measured = rres.Result.Elapsed
		stats = rres.Result.Stats
		fmt.Printf("survived: %v end-to-end over ranks %v (%d attempt(s), %v detecting+reconstructing)\n",
			rres.Elapsed.Round(time.Microsecond), rres.Survivors, rres.Attempts,
			rres.TimeToRecover().Round(time.Microsecond))
		if healed > 0 {
			// The engine drained with re-admissions applied: run one more
			// collective over the reclaimed topology to show the recovery.
			var after collective.Result
			err = a.Run(backend.Request{
				Primitive: prim, Bytes: *bytes, Root: root, Inputs: inputs,
				OnDone: func(r collective.Result) { after = r },
			})
			if err != nil {
				return err
			}
			env.Engine.Run()
			fmt.Printf("post-heal: %v over the full topology (%.2f GB/s; %d link pair(s) still excluded; %.1f Gbps reclaimed)\n",
				after.Elapsed.Round(time.Microsecond),
				collective.AlgoBandwidthBps(*bytes, after.Elapsed)/1e9,
				len(a.ExcludedLinks()),
				a.Healer().ReclaimedBandwidthBps()/1e9)
		}
	} else {
		err = a.Run(backend.Request{
			Primitive: prim, Bytes: *bytes, Root: root, Inputs: inputs,
			OnDone: func(r collective.Result) { measured, stats = r.Elapsed, r.Stats },
		})
		if err != nil {
			return err
		}
		env.Engine.Run()
	}
	fmt.Printf("executed: %v (algorithm bandwidth %.2f GB/s; prediction off by %+.1f%%)\n",
		measured.Round(time.Microsecond),
		collective.AlgoBandwidthBps(*bytes, measured)/1e9,
		(float64(res.Eval.Time)/float64(measured)-1)*100)
	fmt.Printf("stats: %d chunks delivered over %d hops, %.1f MiB on wire, %d kernels, %d deadlines, %d retransmits\n",
		stats.ChunksDelivered, stats.ChunkHops, float64(stats.BytesOnWire)/(1<<20),
		stats.Kernels, stats.Deadlines, stats.Retransmits)

	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", tracer.Len(), *traceOut)
	}
	return writeMetrics(reg, *metricsOut)
}

// runScale runs the -topo sweep: a hierarchical AllReduce over a generated
// datacenter topology on the partitioned event engine, optionally with a
// chaos schedule, background healing and the congestion plane riding on
// the recovery layer.
func runScale(spec string, workers int, bytes, seed int64, chaosSpec string, heal *health.Options, congest *scale.CongestSpec, iters int, metricsOut string) error {
	var reg *metrics.Registry
	if metricsOut != "" {
		reg = metrics.New()
	}
	res, err := core.RunScale(core.ScaleRequest{
		Topo: spec, Workers: workers, SegBytes: bytes, Seed: seed, Metrics: reg,
		Chaos: chaosSpec, Heal: heal, Congest: congest, Iterations: iters,
	})
	if err != nil {
		if errors.Is(err, chaos.ErrUnsupportedKind) {
			return fmt.Errorf("%w\n(congestion kinds — incast, hashcollide, pfcstorm — need the congestion plane: add -congest; kernel kinds — hang, straggler — need the testbed pipeline)", err)
		}
		return err
	}
	fmt.Printf("topology: %s (%d ranks, %d domains)\n", res.Name, res.Ranks, res.Domains)
	fmt.Printf("allreduce: %v virtual, verified checksum %#x\n",
		res.Elapsed.Round(time.Microsecond), res.Checksum)
	fmt.Printf("engine: %d events in %d windows on %d worker(s), %v wall (%.2fx busy/wall)\n",
		res.Fired, res.Windows, res.Workers, res.Wall.Round(time.Millisecond), res.Speedup)
	for _, s := range res.Stats {
		fmt.Printf("  %-10s %8d events, %5d stalls, max queue %d\n",
			s.Name, s.Fired, s.Stalls, s.MaxQueueDepth)
	}
	if rec := res.Recovery; rec != nil {
		fmt.Printf("chaos: injected %d scale events, %d drops, %d holds\n",
			rec.Injected.ScaleEvents, rec.Injected.Drops, rec.Injected.Holds)
		fmt.Printf("recovery: %d deadline(s), %d retransmit(s), %d reroute(s), %d duplicate(s) dropped, %d stall warning(s)\n",
			rec.Deadlines, rec.Retransmits, rec.Reroutes, rec.Duplicates, rec.StallWarnings)
		fmt.Printf("recovery: %d domain-local + %d boundary recoveries (fabric counters %d/%d), max time-to-recover %v\n",
			rec.DomainLocal, rec.Boundary,
			res.RecoveryEvents.DomainLocal, res.RecoveryEvents.Boundary,
			rec.TimeToRecoverMax.Round(time.Microsecond))
		if rec.Healed > 0 || rec.Condemned > 0 {
			fmt.Printf("heal: %d edge(s) re-admitted (max time-to-heal %v), %d condemned\n",
				rec.Healed, rec.TimeToHealMax.Round(time.Microsecond), rec.Condemned)
		}
	}
	if cg := res.Congest; cg != nil {
		fmt.Printf("congest: %d pause frame(s), max queue %d bytes; verdicts %d degraded / %d restored / %d condemned\n",
			cg.PauseFrames, cg.MaxQueueBytes, cg.Degraded, cg.Restored, cg.Condemned)
		if cg.Adaptations > 0 {
			fmt.Printf("congest: adapted %d time(s), %d path reroute(s), max time-to-adapt %v\n",
				cg.Adaptations, cg.PathReroutes, cg.TimeToAdaptMax.Round(time.Microsecond))
		}
	}
	if n := len(res.IterDurations); n > 1 {
		worst := res.IterDurations[0]
		for _, d := range res.IterDurations[1:] {
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("iterations: %d barriers, mean %v, worst %v\n",
			n, (res.Elapsed / time.Duration(n)).Round(time.Microsecond), worst.Round(time.Microsecond))
	}
	return writeMetrics(reg, metricsOut)
}

// writeMetrics dumps the registry (if installed) to path, JSON or
// Prometheus text by extension.
func writeMetrics(reg *metrics.Registry, path string) error {
	if reg == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics: %d families -> %s\n", len(reg.Snapshot().Families), path)
	return nil
}

// runHybrid carves the cluster into DP x TP x PP communicator groups and
// runs one collective per group, all concurrently on the shared fabric:
// TP and DP groups all-reduce, PP groups broadcast stage activations.
// Traffic classes follow the spec's default ladder (TP > PP > DP).
func runHybrid(env *backend.Env, a *core.AdapCC, specStr string, bytes int64) error {
	spec, err := parseHybridSpec(specStr)
	if err != nil {
		return err
	}
	if spec.World() != len(env.AllRanks()) {
		return fmt.Errorf("-hybrid %s needs %d GPUs, cluster has %d",
			specStr, spec.World(), len(env.AllRanks()))
	}
	specs, err := spec.Groups()
	if err != nil {
		return err
	}
	m, err := comm.NewManager(a)
	if err != nil {
		return err
	}
	groups, err := m.NewGroups(specs)
	if err != nil {
		return err
	}
	fmt.Printf("hybrid: %d DP x %d TP x %d PP over %d GPUs -> %d groups, one traffic class each\n",
		spec.DP, spec.TP, spec.PP, spec.World(), len(groups))

	type outcome struct {
		group   *comm.Group
		elapsed time.Duration
	}
	done := make([]outcome, 0, len(groups))
	for _, g := range groups {
		g := g
		prim := strategy.AllReduce
		req := backend.Request{Primitive: prim, Bytes: bytes, Root: -1, Mode: payload.Phantom}
		if strings.HasPrefix(g.Name(), "pp") {
			req.Primitive = strategy.Broadcast
			req.Root = g.Ranks()[0]
		}
		req.OnDone = func(r collective.Result) {
			done = append(done, outcome{g, r.Elapsed})
		}
		if err := g.Run(req); err != nil {
			return err
		}
	}
	fmt.Printf("launched: %d collectives of %d MiB in flight concurrently\n", m.InFlight(), bytes>>20)
	env.Engine.Run()

	for _, o := range done {
		info := env.Fabric.ClassInfo(o.group.Class())
		fmt.Printf("  %-4s ranks %v  prio %d weight %g: %10v (%.1f MiB on wire)\n",
			o.group.Name(), o.group.Ranks(), info.Priority, info.Weight,
			o.elapsed.Round(time.Microsecond), float64(o.group.WireBytes())/(1<<20))
	}
	fmt.Printf("strategy cache: %d entries for %d groups (same-shape groups share)\n",
		a.CachedStrategies(), len(groups))
	return nil
}

// parseHybridSpec parses "DPxTPxPP", e.g. "2x2x2".
func parseHybridSpec(s string) (comm.Spec, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return comm.Spec{}, fmt.Errorf("hybrid spec %q: want DPxTPxPP, e.g. 2x2x2", s)
	}
	var dims [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return comm.Spec{}, fmt.Errorf("hybrid spec %q: bad dimension %q", s, p)
		}
		dims[i] = n
	}
	return comm.Spec{DP: dims[0], TP: dims[1], PP: dims[2]}, nil
}

func parsePrimitive(name string) (strategy.Primitive, error) {
	switch name {
	case "reduce":
		return strategy.Reduce, nil
	case "broadcast":
		return strategy.Broadcast, nil
	case "allreduce":
		return strategy.AllReduce, nil
	case "alltoall":
		return strategy.AlltoAll, nil
	default:
		return 0, fmt.Errorf("unknown primitive %q", name)
	}
}

// Synthesis-scale benchmarks: full search vs sketch-guided vs incremental
// patching at 256, 1024 and 4096 ranks, with the CI guard that keeps
// re-synthesis (the recovery path's latency) honest. Measurements land in
// BENCH_synth.json.
//
// Two notions of cost are recorded per row. wall_ms is host wall time —
// useful for sizing, but it inherits the evaluator's superlinear growth in
// world size (the shared load table couples every flow). solve_ms is the
// simulated synthesis charge (synth.Result.SolveTime, what Fig. 19c-style
// reconstruction overhead is billed from): the full search pays one unit
// per candidate evaluation, while an incremental patch pays exactly one
// unit at any scale. That constant is the "re-synthesis sublinear in world
// size" guarantee — the patched path's solve charge does not grow with the
// world at all — and it is asserted deterministically below, alongside the
// >=5x wall-clock margin over the full search at every measured scale.
package adapcc

import (
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"adapcc/internal/cluster"
	"adapcc/internal/strategy"
	"adapcc/internal/synth"
	"adapcc/internal/topology"
)

// synthWorlds are the benchmark scales: servers x 8 GPUs. 4096 ranks only
// runs with ADAPCC_SCALE_BENCH=1 (its full search alone takes ~10s).
var synthWorlds = []struct {
	servers int
	gated   bool
}{
	{32, false},  // 256 ranks
	{128, false}, // 1024 ranks
	{512, true},  // 4096 ranks
}

// synthRow is one measurement in BENCH_synth.json.
type synthRow struct {
	Ranks       int     `json:"ranks"`
	Mode        string  `json:"mode"` // full | sketch | incremental
	WallMs      float64 `json:"wall_ms"`
	SolveMs     float64 `json:"solve_ms"`
	Variant     string  `json:"variant"`
	SubsPatched int     `json:"subs_patched,omitempty"`
	SubsTotal   int     `json:"subs_total,omitempty"`
}

func medianDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TestSynthScaleGuard measures full, sketch-guided and incremental
// re-synthesis at each world size, writes BENCH_synth.json, and asserts:
//
//   - the incremental patch is >=5x faster (wall clock) than the full
//     search at every measured scale — the 1024-rank row is the
//     acceptance bar, and in practice the margin is two orders;
//   - the patch's simulated solve charge is the same single-evaluation
//     constant at every world size (sublinear — constant — in world
//     size), while the full search's charge is >=5x larger;
//   - the patch touches only the sub-collectives the excluded link
//     actually crossed (subs_patched < subs_total).
func TestSynthScaleGuard(t *testing.T) {
	gate := os.Getenv("ADAPCC_SCALE_BENCH") == "1"
	var rows []synthRow
	var incSolve []time.Duration
	type scaleResult struct {
		ranks     int
		fullWall  time.Duration
		incWall   time.Duration
		fullSolve time.Duration
		incSolve  time.Duration
	}
	var perScale []scaleResult

	for _, w := range synthWorlds {
		if w.gated && !gate {
			t.Logf("%d ranks: skipped (set ADAPCC_SCALE_BENCH=1 to include)", w.servers*8)
			continue
		}
		ranks := w.servers * 8
		cl, err := cluster.Homogeneous(topology.TransportRDMA, w.servers, 8)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cl.LogicalGraph()
		if err != nil {
			t.Fatal(err)
		}
		costs := synth.NewCosts(g, nil)
		// ExactM keeps M=4 sub-collectives in the winning strategy, so the
		// incremental patch has untouched subs to leave alone.
		req := synth.Request{Primitive: strategy.AllReduce, Bytes: 64 << 20, Root: -1, M: 4, ExactM: true}
		reps := 3
		if ranks >= 4096 {
			reps = 1
		}

		var full *synth.Result
		var walls []time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			full, err = synth.Synthesize(costs, req)
			if err != nil {
				t.Fatal(err)
			}
			walls = append(walls, time.Since(start))
		}
		fullWall := medianDuration(walls)
		rows = append(rows, synthRow{
			Ranks: ranks, Mode: "full", WallMs: ms(fullWall), SolveMs: ms(full.SolveTime), Variant: full.Variant,
		})

		sketched := req
		sketched.Sketch = &synth.Sketch{Cut: synth.CutServer, Allow: []string{full.Variant}, ChunkBytes: 4 << 20}
		walls = nil
		var skres *synth.Result
		for i := 0; i < reps; i++ {
			start := time.Now()
			skres, err = synth.Synthesize(costs, sketched)
			if err != nil {
				t.Fatal(err)
			}
			walls = append(walls, time.Since(start))
		}
		sketchWall := medianDuration(walls)
		rows = append(rows, synthRow{
			Ranks: ranks, Mode: "sketch", WallMs: ms(sketchWall), SolveMs: ms(skres.SolveTime), Variant: skres.Variant,
		})

		// Incremental: exclude the first hop of the first flow and patch the
		// full result around it.
		f := full.Strategy.SubCollectives[0].Flows[0]
		pair := [2]topology.NodeID{f.Path[0], f.Path[1]}
		fg := g.CloneFilteredEdges(func(e topology.Edge) bool {
			return !(e.From == pair[0] && e.To == pair[1]) && !(e.From == pair[1] && e.To == pair[0])
		})
		pc := costs.RemapTo(fg)
		walls = nil
		var patched *synth.Result
		var stats synth.PatchStats
		for i := 0; i < 5; i++ {
			start := time.Now()
			patched, stats, err = synth.Patch(pc, full, synth.Delta{Kind: synth.DeltaExclude, Pair: pair})
			if err != nil {
				t.Fatal(err)
			}
			walls = append(walls, time.Since(start))
		}
		incWall := medianDuration(walls)
		rows = append(rows, synthRow{
			Ranks: ranks, Mode: "incremental", WallMs: ms(incWall), SolveMs: ms(patched.SolveTime),
			Variant: patched.Variant, SubsPatched: stats.SubsPatched, SubsTotal: stats.SubsTotal,
		})
		t.Logf("%d ranks: full %v (solve %v), sketch %v, incremental %v (solve %v, %d/%d subs patched)",
			ranks, fullWall, full.SolveTime, sketchWall, incWall, patched.SolveTime,
			stats.SubsPatched, stats.SubsTotal)

		if stats.SubsPatched < 1 || stats.SubsPatched >= stats.SubsTotal {
			t.Errorf("%d ranks: patch touched %d of %d subs; the delta crossed one sub's flow, the rest must be untouched",
				ranks, stats.SubsPatched, stats.SubsTotal)
		}
		incSolve = append(incSolve, patched.SolveTime)
		perScale = append(perScale, scaleResult{ranks, fullWall, incWall, full.SolveTime, patched.SolveTime})
	}

	for _, s := range perScale {
		if s.incWall*5 > s.fullWall {
			t.Errorf("%d ranks: incremental %v is not >=5x faster than full %v", s.ranks, s.incWall, s.fullWall)
		}
		if s.incSolve*5 > s.fullSolve {
			t.Errorf("%d ranks: incremental solve charge %v is not >=5x below full %v", s.ranks, s.incSolve, s.fullSolve)
		}
	}
	// The sublinearity backstop: the patch charges one evaluation no matter
	// the world size, so its solve time must be identical across scales.
	for i := 1; i < len(incSolve); i++ {
		if incSolve[i] != incSolve[0] {
			t.Errorf("incremental solve charge grew with world size: %v vs %v", incSolve[i], incSolve[0])
		}
	}

	out, err := json.MarshalIndent(struct {
		Rows []synthRow `json:"rows"`
	}{rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_synth.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
